#include "net/transport.hpp"

#include "util/checksum.hpp"

namespace kalis::net {

std::uint8_t TcpFlags::encode() const {
  std::uint8_t bits = extra;
  if (fin) bits |= 0x01;
  if (syn) bits |= 0x02;
  if (rst) bits |= 0x04;
  if (psh) bits |= 0x08;
  if (ack) bits |= 0x10;
  return bits;
}

TcpFlags TcpFlags::decode(std::uint8_t bits) {
  TcpFlags f;
  f.fin = bits & 0x01;
  f.syn = bits & 0x02;
  f.rst = bits & 0x04;
  f.psh = bits & 0x08;
  f.ack = bits & 0x10;
  f.extra = bits & 0xE0;
  return f;
}

template <class Storage>
Bytes TcpSegmentT<Storage>::encode(Ipv4Addr src, Ipv4Addr dst) const {
  Bytes out;
  ByteWriter w(out);
  w.u16be(srcPort);
  w.u16be(dstPort);
  w.u32be(seq);
  w.u32be(ackNo);
  const std::size_t offsetWords = 5 + options.size() / 4;
  w.u8(static_cast<std::uint8_t>((offsetWords << 4) | offsetReserved));
  w.u8(flags.encode());
  w.u16be(window);
  const std::size_t checksumOffset = out.size();
  w.u16be(0);
  w.u16be(urgent);
  w.raw(BytesView(options));
  w.raw(payload);
  if (wireChecksum) {
    w.patchU16be(checksumOffset, *wireChecksum);
  } else {
    const Bytes pseudo = ipv4PseudoHeader(
        src, dst, IpProto::kTcp, static_cast<std::uint16_t>(out.size()));
    w.patchU16be(checksumOffset, internetChecksum2(pseudo, BytesView(out)));
  }
  return out;
}

std::optional<TcpDecoded> decodeTcp(BytesView raw, Ipv4Addr src, Ipv4Addr dst) {
  if (raw.size() < 20) return std::nullopt;
  ByteReader r(raw);
  TcpDecoded d;
  d.segment.srcPort = *r.u16be();
  d.segment.dstPort = *r.u16be();
  d.segment.seq = *r.u32be();
  d.segment.ackNo = *r.u32be();
  auto offsetByte = *r.u8();
  const std::size_t headerLen = (offsetByte >> 4) * 4u;
  if (headerLen < 20 || headerLen > raw.size()) return std::nullopt;
  d.segment.flags = TcpFlags::decode(*r.u8());
  d.segment.window = *r.u16be();
  d.segment.wireChecksum = *r.u16be();
  d.segment.urgent = *r.u16be();
  d.segment.offsetReserved = offsetByte & 0x0f;
  d.segment.options = *r.take(headerLen - 20);  // aliases `raw`
  d.segment.payload = r.rest();                 // ditto
  const Bytes pseudo = ipv4PseudoHeader(src, dst, IpProto::kTcp,
                                        static_cast<std::uint16_t>(raw.size()));
  d.checksumValid = internetChecksum2(pseudo, raw) == 0;
  return d;
}

template struct TcpSegmentT<Bytes>;
template struct TcpSegmentT<BytesView>;

template <class Storage>
Bytes UdpDatagramT<Storage>::encode(Ipv4Addr src, Ipv4Addr dst) const {
  Bytes out;
  ByteWriter w(out);
  w.u16be(srcPort);
  w.u16be(dstPort);
  w.u16be(static_cast<std::uint16_t>(8 + payload.size()));
  const std::size_t checksumOffset = out.size();
  w.u16be(0);
  w.raw(payload);
  if (wireChecksum) {
    w.patchU16be(checksumOffset, *wireChecksum);
  } else {
    const Bytes pseudo = ipv4PseudoHeader(
        src, dst, IpProto::kUdp, static_cast<std::uint16_t>(out.size()));
    std::uint16_t csum = internetChecksum2(pseudo, BytesView(out));
    if (csum == 0) csum = 0xffff;  // RFC 768: transmitted 0 = "no checksum"
    w.patchU16be(checksumOffset, csum);
  }
  return out;
}

std::optional<UdpDecoded> decodeUdp(BytesView raw, Ipv4Addr src, Ipv4Addr dst) {
  if (raw.size() < 8) return std::nullopt;
  ByteReader r(raw);
  UdpDecoded d;
  d.datagram.srcPort = *r.u16be();
  d.datagram.dstPort = *r.u16be();
  auto len = *r.u16be();
  d.datagram.wireChecksum = *r.u16be();
  if (len < 8 || len > raw.size()) return std::nullopt;
  d.datagram.payload = raw.subspan(8, len - 8);  // aliases `raw`
  const Bytes pseudo =
      ipv4PseudoHeader(src, dst, IpProto::kUdp, static_cast<std::uint16_t>(len));
  d.checksumValid = internetChecksum2(pseudo, raw.subspan(0, len)) == 0;
  return d;
}

template struct UdpDatagramT<Bytes>;
template struct UdpDatagramT<BytesView>;

template <class Storage>
Bytes IcmpMessageT<Storage>::encode() const {
  Bytes out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  const std::size_t checksumOffset = out.size();
  w.u16be(0);
  w.u16be(identifier);
  w.u16be(sequence);
  w.raw(payload);
  w.patchU16be(checksumOffset,
               wireChecksum ? *wireChecksum : internetChecksum(BytesView(out)));
  return out;
}

template struct IcmpMessageT<Bytes>;
template struct IcmpMessageT<BytesView>;

std::optional<IcmpDecoded> decodeIcmp(BytesView raw) {
  if (raw.size() < 8) return std::nullopt;
  ByteReader r(raw);
  IcmpDecoded d;
  d.message.type = static_cast<IcmpType>(*r.u8());
  d.message.code = *r.u8();
  d.message.wireChecksum = *r.u16be();
  d.message.identifier = *r.u16be();
  d.message.sequence = *r.u16be();
  d.message.payload = r.rest();  // aliases `raw`
  d.checksumValid = internetChecksum(raw) == 0;
  return d;
}

}  // namespace kalis::net
