// Bidirectional codec: the serializer counterpart to dissect().
//
// Follows the p4_pdpi packetlib discipline: the parser keeps every bit it
// reads (named fields for what detectors consume, wire-preservation fields
// and trailer views for the rest), so serialization is total and exact:
//
//     serialize(dissect(pkt)) == pkt.raw        for ANY input bytes,
//
// including truncated, mutated and checksum-corrupt frames — at each layer
// the serializer re-encodes the inner layer when it parsed and falls back to
// the retained payload view verbatim when it did not.
//
// Builders get the complementary direction: a Dissection assembled from
// owning structs (wire fields left at their defaults) serializes to the same
// bytes the per-layer encode() helpers emit, with checksums computed fresh.
//
// toReadableByteString() renders a dissection as a deterministic, line-based
// textual form (one line per parsed layer, every preserved field shown) —
// the golden-file format for codec regression tests.
#pragma once

#include <string>

#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

/// Re-serializes a dissection to wire bytes. For any d = dissect(pkt) the
/// result equals pkt.raw exactly. The dissection's views must still be
/// alive (i.e. the capture buffer they alias must not have been freed).
Bytes serialize(const Dissection& d);

/// Deterministic textual rendering of every parsed layer and preserved wire
/// field — the packetlib-style "readable byte string" used by golden tests.
/// Ends with a newline.
std::string toReadableByteString(const Dissection& d);

/// Process-wide count of serialize() calls (relaxed atomic), mirroring
/// dissectCallCount(); bench and tests use deltas of this counter.
std::uint64_t serializeCallCount();

}  // namespace kalis::net
