// Allocation-free entity identifiers for the per-packet hot path.
//
// Detection modules historically keyed their per-victim/per-suspect state by
// the knowgget entity *string* ("0x0003", "aa:bb:cc:dd:ee:ff", "10.0.0.7"),
// which costs a heap allocation per lookup on every captured packet. An
// EntityRef is the same identity as a fixed-size, trivially-copyable value:
// an address-family tag plus up to 16 canonical bytes. The knowgget string is
// recovered with toString() only when an alert or knowledge entry is actually
// emitted — i.e. off the per-packet path.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

class EntityRef {
 public:
  enum class Kind : std::uint8_t {
    kNone = 0,        ///< no identity ("?" in knowgget labels)
    kBroadcast,       ///< the BLE "broadcast" pseudo-destination
    kMac16,           ///< 802.15.4 short address (2 bytes, big-endian)
    kMac48,           ///< EUI-48, logical byte order
    kIpv4,            ///< 4 octets, network order
    kIpv6,            ///< 16 bytes
  };

  constexpr EntityRef() = default;

  static constexpr EntityRef none() { return EntityRef{}; }
  static constexpr EntityRef broadcastLabel() {
    EntityRef r;
    r.kind_ = Kind::kBroadcast;
    return r;
  }
  static constexpr EntityRef of(Mac16 a) {
    EntityRef r;
    r.kind_ = Kind::kMac16;
    r.len_ = 2;
    r.data_[0] = static_cast<std::uint8_t>(a.value >> 8);
    r.data_[1] = static_cast<std::uint8_t>(a.value & 0xff);
    return r;
  }
  static constexpr EntityRef of(const Mac48& a) {
    EntityRef r;
    r.kind_ = Kind::kMac48;
    r.len_ = 6;
    for (std::size_t i = 0; i < 6; ++i) r.data_[i] = a.bytes[i];
    return r;
  }
  static constexpr EntityRef of(Ipv4Addr a) {
    EntityRef r;
    r.kind_ = Kind::kIpv4;
    r.len_ = 4;
    r.data_[0] = static_cast<std::uint8_t>(a.value >> 24);
    r.data_[1] = static_cast<std::uint8_t>((a.value >> 16) & 0xff);
    r.data_[2] = static_cast<std::uint8_t>((a.value >> 8) & 0xff);
    r.data_[3] = static_cast<std::uint8_t>(a.value & 0xff);
    return r;
  }
  static constexpr EntityRef of(const Ipv6Addr& a) {
    EntityRef r;
    r.kind_ = Kind::kIpv6;
    r.len_ = 16;
    for (std::size_t i = 0; i < 16; ++i) r.data_[i] = a.bytes[i];
    return r;
  }

  constexpr Kind kind() const { return kind_; }
  /// True for any identity that names something (including "broadcast").
  constexpr bool valid() const { return kind_ != Kind::kNone; }
  BytesView bytes() const { return BytesView(data_.data(), len_); }

  Mac16 asMac16() const {
    return Mac16{static_cast<std::uint16_t>((data_[0] << 8) | data_[1])};
  }
  Mac48 asMac48() const {
    Mac48 a;
    for (std::size_t i = 0; i < 6; ++i) a.bytes[i] = data_[i];
    return a;
  }
  Ipv4Addr asIpv4() const {
    return Ipv4Addr{(static_cast<std::uint32_t>(data_[0]) << 24) |
                    (static_cast<std::uint32_t>(data_[1]) << 16) |
                    (static_cast<std::uint32_t>(data_[2]) << 8) |
                    static_cast<std::uint32_t>(data_[3])};
  }
  Ipv6Addr asIpv6() const {
    Ipv6Addr a;
    for (std::size_t i = 0; i < 16; ++i) a.bytes[i] = data_[i];
    return a;
  }

  /// Stable 64-bit hash (FNV-1a over kind + canonical bytes). Used for shard
  /// routing, so its value is part of the pipeline's determinism contract.
  constexpr std::uint64_t key() const {
    std::uint64_t h = 1469598103934665603ull;
    h ^= static_cast<std::uint8_t>(kind_);
    h *= 1099511628211ull;
    for (std::size_t i = 0; i < len_; ++i) {
      h ^= data_[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Knowgget label, byte-identical to the legacy string accessors:
  /// "?", "broadcast", "0x0003", "aa:bb:cc:dd:ee:ff", "10.0.0.7", "fe80::...".
  std::string toString() const;

  // Unused tail bytes are always zero, so member-wise comparison is exact.
  auto operator<=>(const EntityRef&) const = default;

 private:
  Kind kind_ = Kind::kNone;
  std::uint8_t len_ = 0;
  std::array<std::uint8_t, 16> data_{};
};

static_assert(std::is_trivially_copyable_v<EntityRef>);

}  // namespace kalis::net

template <>
struct std::hash<kalis::net::EntityRef> {
  std::size_t operator()(const kalis::net::EntityRef& r) const noexcept {
    return static_cast<std::size_t>(r.key());
  }
};
