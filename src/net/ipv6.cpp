#include "net/ipv6.hpp"

#include "util/checksum.hpp"

namespace kalis::net {

Bytes Ipv6Header::encode(BytesView payload) const {
  Bytes out;
  ByteWriter w(out);
  const std::uint32_t vtf = (6u << 28) |
                            (static_cast<std::uint32_t>(trafficClass) << 20) |
                            (flowLabel & 0xfffff);
  w.u32be(vtf);
  w.u16be(wirePayloadLen ? *wirePayloadLen
                         : static_cast<std::uint16_t>(payload.size()));
  w.u8(nextHeader);
  w.u8(hopLimit);
  w.raw(BytesView(src.bytes.data(), src.bytes.size()));
  w.raw(BytesView(dst.bytes.data(), dst.bytes.size()));
  w.raw(payload);
  return out;
}

std::optional<Ipv6Decoded> decodeIpv6(BytesView raw) {
  if (raw.size() < 40) return std::nullopt;
  ByteReader r(raw);
  auto vtf = *r.u32be();
  if ((vtf >> 28) != 6) return std::nullopt;
  Ipv6Decoded d;
  d.header.trafficClass = static_cast<std::uint8_t>((vtf >> 20) & 0xff);
  d.header.flowLabel = vtf & 0xfffff;
  auto payloadLen = *r.u16be();
  d.header.nextHeader = *r.u8();
  d.header.hopLimit = *r.u8();
  auto srcBytes = *r.take(16);
  auto dstBytes = *r.take(16);
  std::copy(srcBytes.begin(), srcBytes.end(), d.header.src.bytes.begin());
  std::copy(dstBytes.begin(), dstBytes.end(), d.header.dst.bytes.begin());
  d.header.wirePayloadLen = payloadLen;
  std::size_t len = payloadLen;
  if (len > r.remaining()) len = r.remaining();
  d.payload = *r.take(len);  // aliases `raw`
  d.trailer = r.rest();      // payloadLength slack, ditto
  return d;
}

Bytes ipv6PseudoHeader(const Ipv6Addr& src, const Ipv6Addr& dst,
                       std::uint32_t length, std::uint8_t nextHeader) {
  Bytes out;
  ByteWriter w(out);
  w.raw(BytesView(src.bytes.data(), src.bytes.size()));
  w.raw(BytesView(dst.bytes.data(), dst.bytes.size()));
  w.u32be(length);
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u8(nextHeader);
  return out;
}

template <class Storage>
Bytes Icmpv6MessageT<Storage>::encode(const Ipv6Addr& src, const Ipv6Addr& dst) const {
  Bytes out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  const std::size_t checksumOffset = out.size();
  w.u16be(0);
  w.raw(body);
  if (wireChecksum) {
    w.patchU16be(checksumOffset, *wireChecksum);
  } else {
    const Bytes pseudo =
        ipv6PseudoHeader(src, dst, static_cast<std::uint32_t>(out.size()),
                         static_cast<std::uint8_t>(IpProto::kIcmpv6));
    w.patchU16be(checksumOffset, internetChecksum2(pseudo, BytesView(out)));
  }
  return out;
}

template struct Icmpv6MessageT<Bytes>;
template struct Icmpv6MessageT<BytesView>;

std::optional<Icmpv6Decoded> decodeIcmpv6(BytesView raw, const Ipv6Addr& src,
                                          const Ipv6Addr& dst) {
  if (raw.size() < 4) return std::nullopt;
  ByteReader r(raw);
  Icmpv6Decoded d;
  d.message.type = static_cast<Icmpv6Type>(*r.u8());
  d.message.code = *r.u8();
  d.message.wireChecksum = *r.u16be();
  d.message.body = r.rest();  // aliases `raw`
  const Bytes pseudo =
      ipv6PseudoHeader(src, dst, static_cast<std::uint32_t>(raw.size()),
                       static_cast<std::uint8_t>(IpProto::kIcmpv6));
  d.checksumValid = internetChecksum2(pseudo, raw) == 0;
  return d;
}

Bytes RplDio::encodeBody() const {
  Bytes out;
  ByteWriter w(out);
  w.u8(instanceId);
  w.u8(versionNumber);
  w.u16be(rank);
  w.u8(groundedMopPrf);
  w.u8(dtsn);
  w.u8(flags);
  w.u8(reserved);
  w.raw(BytesView(dodagId.bytes.data(), dodagId.bytes.size()));
  return out;
}

std::optional<RplDio> decodeRplDio(BytesView body) {
  if (body.size() < 24) return std::nullopt;
  ByteReader r(body);
  RplDio d;
  d.instanceId = *r.u8();
  d.versionNumber = *r.u8();
  d.rank = *r.u16be();
  d.groundedMopPrf = *r.u8();
  d.dtsn = *r.u8();
  d.flags = *r.u8();
  d.reserved = *r.u8();
  auto id = *r.take(16);
  std::copy(id.begin(), id.end(), d.dodagId.bytes.begin());
  return d;
}

Bytes RplDao::encodeBody() const {
  Bytes out;
  ByteWriter w(out);
  w.u8(instanceId);
  w.u8(kdFlags);
  w.u8(reserved);
  w.u8(daoSequence);
  w.raw(BytesView(dodagId.bytes.data(), dodagId.bytes.size()));
  w.raw(BytesView(target.bytes.data(), target.bytes.size()));
  return out;
}

std::optional<RplDao> decodeRplDao(BytesView body) {
  if (body.size() < 36) return std::nullopt;
  ByteReader r(body);
  RplDao d;
  d.instanceId = *r.u8();
  d.kdFlags = *r.u8();
  d.reserved = *r.u8();
  d.daoSequence = *r.u8();
  auto id = *r.take(16);
  std::copy(id.begin(), id.end(), d.dodagId.bytes.begin());
  auto target = *r.take(16);
  std::copy(target.begin(), target.end(), d.target.bytes.begin());
  return d;
}

}  // namespace kalis::net
