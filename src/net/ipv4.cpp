#include "net/ipv4.hpp"

#include "util/checksum.hpp"

namespace kalis::net {

Bytes Ipv4Header::encode(BytesView payload) const {
  Bytes out;
  ByteWriter w(out);
  const std::size_t ihl = 20 + options.size();
  w.u8(static_cast<std::uint8_t>(0x40 | (ihl / 4)));
  w.u8(tos);
  w.u16be(wireTotalLen ? *wireTotalLen
                       : static_cast<std::uint16_t>(ihl + payload.size()));
  w.u16be(identification);
  w.u16be(flagsFrag);
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  const std::size_t checksumOffset = out.size();
  w.u16be(0);
  w.u32be(src.value);
  w.u32be(dst.value);
  w.raw(options);
  w.patchU16be(checksumOffset,
               wireChecksum ? *wireChecksum : internetChecksum(BytesView(out)));
  w.raw(payload);
  return out;
}

std::optional<Ipv4Decoded> decodeIpv4(BytesView raw) {
  if (raw.size() < 20) return std::nullopt;
  ByteReader r(raw);
  auto verIhl = r.u8();
  if ((*verIhl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = (*verIhl & 0x0f) * 4u;
  if (ihl < 20 || raw.size() < ihl) return std::nullopt;
  auto tos = r.u8();
  auto totalLen = r.u16be();
  auto ident = r.u16be();
  auto flagsFrag = r.u16be();
  auto ttl = r.u8();
  auto proto = r.u8();
  auto checksum = r.u16be();  // validated over the whole header below
  auto src = r.u32be();
  auto dst = r.u32be();
  if (!dst) return std::nullopt;
  auto options = r.take(ihl - 20);

  Ipv4Decoded d;
  d.header.tos = *tos;
  d.header.identification = *ident;
  d.header.ttl = *ttl;
  d.header.protocol = static_cast<IpProto>(*proto);
  d.header.src = Ipv4Addr{*src};
  d.header.dst = Ipv4Addr{*dst};
  d.header.options = *options;  // aliases `raw`
  d.header.flagsFrag = *flagsFrag;
  d.header.wireChecksum = *checksum;
  d.header.wireTotalLen = *totalLen;
  d.checksumValid = internetChecksum(raw.subspan(0, ihl)) == 0;

  std::size_t payloadLen = *totalLen >= ihl ? *totalLen - ihl : 0;
  if (payloadLen > raw.size() - ihl) payloadLen = raw.size() - ihl;
  d.payload = raw.subspan(ihl, payloadLen);   // aliases `raw`
  d.trailer = raw.subspan(ihl + payloadLen);  // totalLength slack, ditto
  return d;
}

Bytes ipv4PseudoHeader(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                       std::uint16_t length) {
  Bytes out;
  ByteWriter w(out);
  w.u32be(src.value);
  w.u32be(dst.value);
  w.u8(0);
  w.u8(static_cast<std::uint8_t>(proto));
  w.u16be(length);
  return out;
}

}  // namespace kalis::net
