// Frozen copy of the pre-zero-copy dissector. TEST-ONLY REFERENCE.
//
// When the dissector moved to in-place parsing (views aliasing the capture
// buffer, see packet_view.hpp), this file snapshotted the previous
// implementation — every decoder copies layer payloads into owning Bytes,
// exactly as the original code did. The equivalence property test replays
// the fuzz corpus and random traffic through both dissectors and asserts
// field-for-field identical results. Do not "fix" or modernize this file:
// its value is that it does not change.
#pragma once

#include <optional>
#include <string>

#include "net/packet.hpp"

namespace kalis::net::legacy {

/// Owning mirror of the old Dissection: every payload field is a deep copy.
struct LegacyDissection {
  Medium medium = Medium::kWifi;
  PacketType type = PacketType::kUnknown;

  // 802.15.4 stack
  std::optional<Ieee802154Frame> wpan;
  bool wpanFcsValid = false;
  std::optional<CtpData> ctpData;
  std::optional<CtpRoutingBeacon> ctpBeacon;
  std::optional<ZigbeeNwkFrame> zigbee;
  std::optional<Ipv6Header> ipv6;
  std::optional<Icmpv6Message> icmpv6;
  std::optional<RplDio> rplDio;
  std::optional<RplDao> rplDao;

  // WiFi stack
  std::optional<WifiFrame> wifi;
  bool wifiFcsValid = false;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpSegment> tcp;
  std::optional<UdpDatagram> udp;
  std::optional<IcmpMessage> icmp;

  // Bluetooth
  std::optional<BleAdvPdu> ble;

  Bytes appPayload;

  std::string linkSource() const;
  std::string linkDest() const;
  std::optional<std::string> networkSource() const;
  std::optional<std::string> networkDest() const;
  bool isBroadcastDest() const;
};

/// The old copying dissect(), byte-for-byte the pre-refactor behavior.
LegacyDissection dissectLegacy(const CapturedPacket& pkt);

}  // namespace kalis::net::legacy
