// Monotonic bump allocator with batch-scoped lifetime.
//
// The pipeline's shard engines process packets in batches pulled from the
// ingestion ring. All transient per-batch storage (dissections, stable
// copies of sub-frame slices, scratch buffers) comes out of one BatchArena
// that is reset — not freed — between batches, so the steady state performs
// zero heap allocations on the packet path. Chunks are retained across
// resets and reused; the arena only grows when a batch outsizes every
// previous one.
//
// Lifetime contract: anything allocated from the arena dies at the next
// reset(). Objects placed in the arena must be trivially destructible —
// reset() does not run destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"

namespace kalis::net {

class BatchArena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit BatchArena(std::size_t chunkBytes = kDefaultChunkBytes)
      : chunkBytes_(chunkBytes) {}

  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;

  /// Raw aligned allocation; never fails except by throwing bad_alloc.
  void* allocate(std::size_t size, std::size_t align) {
    if (size == 0) return chunks_.empty() ? ensureChunk(1) : cursor_;
    std::uint8_t* p = alignUp(cursor_, align);
    if (chunks_.empty() || p + size > chunkEnd_) {
      p = alignUp(ensureChunk(size + align), align);
    }
    cursor_ = p + size;
    bytesUsed_ += size;
    if (bytesUsed_ > highWater_) highWater_ = bytesUsed_;
    return p;
  }

  /// Default-constructs a T in the arena. T must be trivially destructible.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BatchArena::reset does not run destructors");
    return ::new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Uninitialized array of n Ts.
  template <typename T>
  T* allocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BatchArena::reset does not run destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies bytes into the arena and returns a view that stays valid until
  /// the next reset() — the way to detach a slice from its capture buffer.
  BytesView copy(BytesView src) {
    if (src.empty()) return BytesView{};
    auto* dst = static_cast<std::uint8_t*>(allocate(src.size(), 1));
    std::copy(src.begin(), src.end(), dst);
    return BytesView(dst, src.size());
  }

  /// Rewinds to empty, keeping every chunk for reuse. O(1) amortized.
  void reset() {
    ++resets_;
    bytesUsed_ = 0;
    current_ = 0;
    if (!chunks_.empty()) {
      cursor_ = chunks_[0].data.get();
      chunkEnd_ = cursor_ + chunks_[0].size;
    }
  }

  struct Stats {
    std::size_t bytesUsed = 0;      ///< live bytes since the last reset
    std::size_t highWater = 0;      ///< max bytesUsed ever observed
    std::size_t chunkCount = 0;
    std::size_t reservedBytes = 0;  ///< total capacity held across resets
    std::uint64_t resets = 0;
  };
  Stats stats() const {
    Stats s;
    s.bytesUsed = bytesUsed_;
    s.highWater = highWater_;
    s.chunkCount = chunks_.size();
    for (const auto& c : chunks_) s.reservedBytes += c.size;
    s.resets = resets_;
    return s;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  static std::uint8_t* alignUp(std::uint8_t* p, std::size_t align) {
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<std::uint8_t*>((v + align - 1) & ~(align - 1));
  }

  /// Moves to the next chunk that can hold `need` bytes, appending one if
  /// necessary, and returns its base.
  std::uint8_t* ensureChunk(std::size_t need) {
    while (current_ + 1 < chunks_.size()) {
      ++current_;
      if (chunks_[current_].size >= need) {
        cursor_ = chunks_[current_].data.get();
        chunkEnd_ = cursor_ + chunks_[current_].size;
        return cursor_;
      }
    }
    const std::size_t size = need > chunkBytes_ ? need : chunkBytes_;
    Chunk c;
    c.data = std::make_unique<std::uint8_t[]>(size);
    c.size = size;
    chunks_.push_back(std::move(c));
    current_ = chunks_.size() - 1;
    cursor_ = chunks_[current_].data.get();
    chunkEnd_ = cursor_ + size;
    return cursor_;
  }

  std::size_t chunkBytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::uint8_t* cursor_ = nullptr;
  std::uint8_t* chunkEnd_ = nullptr;
  std::size_t bytesUsed_ = 0;
  std::size_t highWater_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace kalis::net
