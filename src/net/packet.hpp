// The capture unit consumed by every IDS in this repository, and the
// dissector that parses it into protocol layers.
//
// Kalis's Communication System (paper §IV-B1) overhears traffic on all
// supported interfaces; a CapturedPacket is exactly what such promiscuous
// capture yields: the medium, the raw frame bytes, and receive metadata
// (virtual timestamp, RSSI, channel). Detection modules never see anything
// the radio could not have seen.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addr.hpp"
#include "net/ble.hpp"
#include "net/ctp.hpp"
#include "net/ieee80211.hpp"
#include "net/ieee802154.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/transport.hpp"
#include "net/zigbee.hpp"
#include "util/bytes.hpp"
#include "util/types.hpp"

namespace kalis::net {

enum class Medium : std::uint8_t { kIeee802154, kWifi, kBluetooth };

const char* mediumName(Medium m);

/// Receive-side metadata attached by the capturing radio.
struct RxMeta {
  SimTime timestamp = 0;
  double rssiDbm = -100.0;
  int channel = 0;
  NodeId capturedBy = kInvalidNode;   ///< which sniffer interface saw it
  std::uint64_t captureSeq = 0;       ///< monotone per-sniffer capture index
};

struct CapturedPacket {
  Medium medium = Medium::kWifi;
  Bytes raw;
  RxMeta meta;
};

/// Classification used by the Traffic Statistics module; names below match
/// the knowgget labels from the paper ("TrafficFrequency.TCPSYN", ...).
enum class PacketType : std::uint8_t {
  kUnknown = 0,
  kMalformed,
  // 802.15.4 family
  kWpanAck,
  kWpanBeacon,
  kCtpData,
  kCtpRouting,
  kZigbeeData,
  kZigbeeRouting,
  kRplDio,
  kRplDao,
  kIcmpv6EchoReq,
  kIcmpv6EchoRep,
  kSixlowpanOther,
  // WiFi family
  kWifiBeacon,
  kWifiProbe,
  kWifiDeauth,
  kTcpSyn,
  kTcpSynAck,
  kTcpAck,
  kTcpRst,
  kTcpFin,
  kTcpData,
  kUdp,
  kIcmpEchoReq,
  kIcmpEchoRep,
  kIcmpOther,
  kIpOther,
  // Bluetooth
  kBleAdv,
  kBleScan,
};

const char* packetTypeName(PacketType t);
inline constexpr std::size_t kNumPacketTypes =
    static_cast<std::size_t>(PacketType::kBleScan) + 1;

/// Fully parsed view of a captured packet. Layers that did not parse are
/// empty optionals; `type` is always set (possibly kMalformed/kUnknown).
struct Dissection {
  Medium medium = Medium::kWifi;
  PacketType type = PacketType::kUnknown;

  // 802.15.4 stack
  std::optional<Ieee802154Frame> wpan;
  bool wpanFcsValid = false;
  std::optional<CtpData> ctpData;
  std::optional<CtpRoutingBeacon> ctpBeacon;
  std::optional<ZigbeeNwkFrame> zigbee;
  std::optional<Ipv6Header> ipv6;
  std::optional<Icmpv6Message> icmpv6;
  std::optional<RplDio> rplDio;
  std::optional<RplDao> rplDao;

  // WiFi stack
  std::optional<WifiFrame> wifi;
  bool wifiFcsValid = false;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpSegment> tcp;
  std::optional<UdpDatagram> udp;
  std::optional<IcmpMessage> icmp;

  // Bluetooth
  std::optional<BleAdvPdu> ble;

  /// Innermost application payload (possibly empty).
  Bytes appPayload;

  /// Entity identifier of the link-layer sender, as used in knowgget
  /// "entity" fields ("0x0003", "aa:bb:cc:dd:ee:ff").
  std::string linkSource() const;
  /// Entity identifier of the link-layer destination.
  std::string linkDest() const;
  /// Network-layer source if an IP layer parsed ("10.0.0.7", "fe80::...").
  std::optional<std::string> networkSource() const;
  std::optional<std::string> networkDest() const;
  bool isBroadcastDest() const;
};

/// Parses every layer it can from the raw bytes. Never throws; garbage
/// input yields type = kMalformed / kUnknown with layers unset.
Dissection dissect(const CapturedPacket& pkt);

}  // namespace kalis::net
