// The capture unit consumed by every IDS in this repository, and the
// dissector that parses it into protocol layers.
//
// Kalis's Communication System (paper §IV-B1) overhears traffic on all
// supported interfaces; a CapturedPacket is exactly what such promiscuous
// capture yields: the medium, the raw frame bytes, and receive metadata
// (virtual timestamp, RSSI, channel). Detection modules never see anything
// the radio could not have seen.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addr.hpp"
#include "net/ble.hpp"
#include "net/ctp.hpp"
#include "net/entity_ref.hpp"
#include "net/ieee80211.hpp"
#include "net/ieee802154.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/transport.hpp"
#include "net/zigbee.hpp"
#include "util/bytes.hpp"
#include "util/types.hpp"

namespace kalis::net {

enum class Medium : std::uint8_t { kIeee802154, kWifi, kBluetooth };

const char* mediumName(Medium m);

/// Receive-side metadata attached by the capturing radio.
struct RxMeta {
  SimTime timestamp = 0;
  double rssiDbm = -100.0;
  int channel = 0;
  NodeId capturedBy = kInvalidNode;   ///< which sniffer interface saw it
  std::uint64_t captureSeq = 0;       ///< monotone per-sniffer capture index
};

struct CapturedPacket {
  Medium medium = Medium::kWifi;
  Bytes raw;
  RxMeta meta;
};

/// Classification used by the Traffic Statistics module; names below match
/// the knowgget labels from the paper ("TrafficFrequency.TCPSYN", ...).
enum class PacketType : std::uint8_t {
  kUnknown = 0,
  kMalformed,
  // 802.15.4 family
  kWpanAck,
  kWpanBeacon,
  kCtpData,
  kCtpRouting,
  kZigbeeData,
  kZigbeeRouting,
  kRplDio,
  kRplDao,
  kIcmpv6EchoReq,
  kIcmpv6EchoRep,
  kSixlowpanOther,
  // WiFi family
  kWifiBeacon,
  kWifiProbe,
  kWifiDeauth,
  kTcpSyn,
  kTcpSynAck,
  kTcpAck,
  kTcpRst,
  kTcpFin,
  kTcpData,
  kUdp,
  kIcmpEchoReq,
  kIcmpEchoRep,
  kIcmpOther,
  kIpOther,
  // Bluetooth
  kBleAdv,
  kBleScan,
};

const char* packetTypeName(PacketType t);
inline constexpr std::size_t kNumPacketTypes =
    static_cast<std::size_t>(PacketType::kBleScan) + 1;

/// Fully parsed view of a captured packet. Layers that did not parse are
/// empty optionals; `type` is always set (possibly kMalformed/kUnknown).
///
/// ZERO-COPY AND ALIASING: the dissector parses in place. Every variable-
/// length field here — `appPayload`, `raw`, and the payload/body views inside
/// the layer structs — is a BytesView aliasing the CapturedPacket's buffer
/// that was dissected. A Dissection is therefore valid only as long as that
/// buffer is; consumers that must outlive it copy explicitly with toBytes()
/// or BatchArena::copy(). See DESIGN.md §10 for the full contract.
struct Dissection {
  Medium medium = Medium::kWifi;
  PacketType type = PacketType::kUnknown;

  // 802.15.4 stack
  std::optional<Ieee802154FrameView> wpan;
  bool wpanFcsValid = false;
  std::optional<CtpDataView> ctpData;
  std::optional<CtpRoutingBeacon> ctpBeacon;
  std::optional<ZigbeeNwkFrameView> zigbee;
  std::optional<Ipv6Header> ipv6;
  std::optional<Icmpv6MessageView> icmpv6;
  std::optional<RplDio> rplDio;
  std::optional<RplDao> rplDao;

  // WiFi stack
  std::optional<WifiFrameView> wifi;
  bool wifiFcsValid = false;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpSegmentView> tcp;
  std::optional<UdpDatagramView> udp;
  std::optional<IcmpMessageView> icmp;

  // Bluetooth
  std::optional<BleAdvPduView> ble;

  /// Innermost application payload (possibly empty). Aliases `raw`.
  BytesView appPayload;

  // Codec support views (all alias `raw`). These preserve the byte spans the
  // named layers above cannot reconstruct on their own, so that
  // serialize(dissect(pkt)) == pkt.raw holds unconditionally — see codec.hpp.
  /// The 8-byte LLC/SNAP header of a WiFi data frame, when one unwrapped.
  BytesView llcHeader;
  /// The IP payload (set whenever ipv4/ipv6 parsed — even if the transport
  /// layer inside it did not, which is what makes kMalformed re-emittable).
  BytesView l3Payload;
  /// Link-layer slack past the IP totalLength/payloadLength.
  BytesView l3Trailer;
  /// Slack past the UDP length field inside l3Payload.
  BytesView l4Trailer;

  /// The frame this dissection was parsed from (aliases the capture buffer).
  BytesView raw;

  // Allocation-free entity identities — the per-packet hot-path accessors.
  /// Link-layer sender (EntityRef::none() when no link layer parsed).
  EntityRef linkSourceRef() const {
    if (wpan) return EntityRef::of(wpan->src);
    if (wifi) return EntityRef::of(wifi->src);
    if (ble) return EntityRef::of(ble->advAddr);
    return EntityRef::none();
  }
  /// Link-layer destination (BLE advertising is always "broadcast").
  EntityRef linkDestRef() const {
    if (wpan) return EntityRef::of(wpan->dst);
    if (wifi) return EntityRef::of(wifi->dst);
    if (ble) return EntityRef::broadcastLabel();
    return EntityRef::none();
  }
  /// Network-layer source, when an IP layer parsed.
  EntityRef networkSourceRef() const {
    if (ipv4) return EntityRef::of(ipv4->src);
    if (ipv6) return EntityRef::of(ipv6->src);
    return EntityRef::none();
  }
  EntityRef networkDestRef() const {
    if (ipv4) return EntityRef::of(ipv4->dst);
    if (ipv6) return EntityRef::of(ipv6->dst);
    return EntityRef::none();
  }

  // String forms — thin wrappers over the refs, for knowgget labels and
  // alert text. These allocate; keep them off the per-packet path.
  /// Entity identifier of the link-layer sender, as used in knowgget
  /// "entity" fields ("0x0003", "aa:bb:cc:dd:ee:ff").
  std::string linkSource() const { return linkSourceRef().toString(); }
  /// Entity identifier of the link-layer destination.
  std::string linkDest() const { return linkDestRef().toString(); }
  /// Network-layer source if an IP layer parsed ("10.0.0.7", "fe80::...").
  std::optional<std::string> networkSource() const {
    const EntityRef r = networkSourceRef();
    if (!r.valid()) return std::nullopt;
    return r.toString();
  }
  std::optional<std::string> networkDest() const {
    const EntityRef r = networkDestRef();
    if (!r.valid()) return std::nullopt;
    return r.toString();
  }
  bool isBroadcastDest() const;
};

/// Parses every layer it can from the raw bytes, entirely in place: the
/// result aliases pkt.raw (see Dissection). Never throws; garbage input
/// yields type = kMalformed / kUnknown with layers unset.
Dissection dissect(const CapturedPacket& pkt);

/// Process-wide count of dissect() calls, maintained with relaxed atomics
/// (negligible cost). Tests use deltas of this counter to enforce the
/// dissect-once capture-path invariant; see sim_test.cpp.
std::uint64_t dissectCallCount();

}  // namespace kalis::net
