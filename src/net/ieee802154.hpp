// IEEE 802.15.4 MAC frames (data / ack / beacon / command), short-address
// mode with PAN-id compression — the configuration TelosB motes and ZigBee
// devices use in practice.
//
// Wire layout (little-endian, per the standard):
//   FCF(2) | seq(1) | dstPan(2) | dst16(2) | src16(2) | payload | FCS(2)
// FCS is CRC-16/CCITT over all preceding bytes.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

enum class WpanFrameType : std::uint8_t {
  kBeacon = 0,
  kData = 1,
  kAck = 2,
  kMacCommand = 3,
};

/// Payload storage is a template parameter: encode-side users own their
/// payload (`Ieee802154Frame`, Storage = Bytes), while the dissector keeps a
/// zero-copy view into the capture buffer (`Ieee802154FrameView`,
/// Storage = BytesView).
template <class Storage>
struct Ieee802154FrameT {
  WpanFrameType type = WpanFrameType::kData;
  bool securityEnabled = false;   ///< link-layer security bit (feature signal)
  bool ackRequest = false;
  std::uint8_t seq = 0;
  std::uint16_t panId = 0;
  Mac16 dst{Mac16::kBroadcast};
  Mac16 src{0};
  Storage payload{};
  /// FCF bits outside type/security/ack — addressing modes, PAN compression,
  /// frame pending, version. The parser keeps them verbatim so that
  /// encode(decode(x)) reproduces x bit-for-bit (packetlib discipline); the
  /// default is what builders always emitted: PAN-id compression + 16-bit
  /// addressing both ways.
  std::uint16_t fcfExtra = kDefaultFcfExtra;
  /// FCS as seen on the wire. Parsers always set it (even when invalid —
  /// an IDS must be able to re-emit corrupt traffic unchanged); builders
  /// leave it unset and get a freshly computed CRC.
  std::optional<std::uint16_t> wireFcs{};

  static constexpr std::uint16_t kDefaultFcfExtra = 0x8840;

  /// Serializes the frame; FCS is wireFcs when set, else computed.
  Bytes encode() const;
};

using Ieee802154Frame = Ieee802154FrameT<Bytes>;
using Ieee802154FrameView = Ieee802154FrameT<BytesView>;

struct Ieee802154Decoded {
  Ieee802154FrameView frame;
  bool fcsValid = false;
};

/// Decodes a frame; nullopt when structurally truncated. A bad FCS still
/// decodes (an IDS wants to see corrupted traffic) with fcsValid=false.
/// The result's payload is a view aliasing `raw` — the caller keeps the
/// backing buffer alive for as long as the decoded frame is used.
std::optional<Ieee802154Decoded> decodeIeee802154(BytesView raw);

// --- payload dispatch -------------------------------------------------------
// The first payload byte selects the network protocol stacked on 802.15.4.
// 0x3f mirrors TinyOS's 802.15.4 "I-frame" AM dispatch; 0x41 is the real
// 6LoWPAN "uncompressed IPv6" dispatch; 0x48 stands in for a ZigBee NWK frame.

inline constexpr std::uint8_t kDispatchTinyosAm = 0x3f;
inline constexpr std::uint8_t kDispatchIpv6Uncompressed = 0x41;
inline constexpr std::uint8_t kDispatchZigbeeNwk = 0x48;

// TinyOS Active Message ids used by the Collection Tree Protocol.
inline constexpr std::uint8_t kAmCtpRouting = 0x70;
inline constexpr std::uint8_t kAmCtpData = 0x71;

}  // namespace kalis::net
