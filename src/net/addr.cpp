#include "net/addr.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace kalis::net {

std::string toString(Mac16 a) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%04x", a.value);
  return buf;
}

std::optional<Mac16> parseMac16(std::string_view s) {
  s = trim(s);
  if (startsWith(s, "0x") || startsWith(s, "0X")) s.remove_prefix(2);
  if (s.empty() || s.size() > 4) return std::nullopt;
  std::uint16_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return std::nullopt;
    v = static_cast<std::uint16_t>((v << 4) | d);
  }
  return Mac16{v};
}

Mac48 Mac48::broadcast() {
  Mac48 a;
  a.bytes.fill(0xff);
  return a;
}

bool Mac48::isBroadcast() const {
  for (auto b : bytes) {
    if (b != 0xff) return false;
  }
  return true;
}

std::string toString(const Mac48& a) {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", a.bytes[0],
                a.bytes[1], a.bytes[2], a.bytes[3], a.bytes[4], a.bytes[5]);
  return buf;
}

std::optional<Mac48> parseMac48(std::string_view s) {
  auto parts = split(trim(s), ':');
  if (parts.size() != 6) return std::nullopt;
  Mac48 a;
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i].size() != 2) return std::nullopt;
    int hi, lo;
    auto hexVal = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    hi = hexVal(parts[i][0]);
    lo = hexVal(parts[i][1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    a.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return a;
}

std::string toString(Ipv4Addr a) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (a.value >> 24) & 0xff,
                (a.value >> 16) & 0xff, (a.value >> 8) & 0xff, a.value & 0xff);
  return buf;
}

std::optional<Ipv4Addr> parseIpv4(std::string_view s) {
  auto parts = split(trim(s), '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    auto octet = parseInt(p);
    if (!octet || *octet < 0 || *octet > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Addr{v};
}

Ipv6Addr Ipv6Addr::linkLocalFromShort(Mac16 shortAddr) {
  Ipv6Addr a;
  a.bytes[0] = 0xfe;
  a.bytes[1] = 0x80;
  // RFC 4944 short-address IID: 0000:00ff:fe00:XXXX.
  a.bytes[11] = 0xff;
  a.bytes[12] = 0xfe;
  a.bytes[14] = static_cast<std::uint8_t>(shortAddr.value >> 8);
  a.bytes[15] = static_cast<std::uint8_t>(shortAddr.value & 0xff);
  return a;
}

Ipv6Addr Ipv6Addr::allNodesMulticast() {
  Ipv6Addr a;
  a.bytes[0] = 0xff;
  a.bytes[1] = 0x02;
  a.bytes[15] = 0x01;
  return a;
}

std::optional<Mac16> Ipv6Addr::embeddedShort() const {
  if (bytes[0] != 0xfe || bytes[1] != 0x80) return std::nullopt;
  if (bytes[11] != 0xff || bytes[12] != 0xfe) return std::nullopt;
  return Mac16{static_cast<std::uint16_t>((bytes[14] << 8) | bytes[15])};
}

std::string toString(const Ipv6Addr& a) {
  char buf[48];
  std::snprintf(buf, sizeof buf,
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                a.bytes[0], a.bytes[1], a.bytes[2], a.bytes[3], a.bytes[4],
                a.bytes[5], a.bytes[6], a.bytes[7], a.bytes[8], a.bytes[9],
                a.bytes[10], a.bytes[11], a.bytes[12], a.bytes[13], a.bytes[14],
                a.bytes[15]);
  return buf;
}

}  // namespace kalis::net
