// TinyOS Collection Tree Protocol (CTP) frames, as carried by the TelosB WSN
// in the paper's testbed.
//
// CTP data frame (after the TinyOS AM dispatch bytes):
//   options(1) | THL(1) | ETX(2 BE) | origin(2 BE) | seqno(1) | collectId(1) | payload
// THL ("time has lived") increments at every forwarding hop — the Topology
// Discovery module uses THL > 0 as direct evidence of a multi-hop network.
//
// CTP routing beacon:
//   options(1) | parent(2 BE) | ETX(2 BE)
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

/// Payload storage is a template parameter: encoders own their payload
/// (Storage = Bytes); the dissector keeps a zero-copy view (Storage =
/// BytesView) aliasing the capture buffer.
template <class Storage>
struct CtpDataT {
  std::uint8_t options = 0;
  std::uint8_t thl = 0;        ///< hops travelled so far
  std::uint16_t etx = 0;       ///< sender's route cost estimate
  Mac16 origin{0};             ///< original data source
  std::uint8_t seqno = 0;      ///< origin-assigned sequence number
  std::uint8_t collectId = 0;  ///< collection instance ("AM type" of the data)
  Storage payload{};

  Bytes encode() const;
};

using CtpData = CtpDataT<Bytes>;
using CtpDataView = CtpDataT<BytesView>;

/// The result's payload aliases `raw`.
std::optional<CtpDataView> decodeCtpData(BytesView raw);

/// Materializes a zero-copy view into an owning frame — the explicit copy
/// point for forwarders that mutate or retain a dissected frame.
inline CtpData toOwned(const CtpDataView& v) {
  return CtpData{v.options, v.thl, v.etx, v.origin,
                 v.seqno,   v.collectId, toBytes(v.payload)};
}

struct CtpRoutingBeacon {
  std::uint8_t options = 0;
  Mac16 parent{Mac16::kBroadcast};  ///< current parent in the tree
  std::uint16_t etx = 0;            ///< advertised route cost

  Bytes encode() const;
};

std::optional<CtpRoutingBeacon> decodeCtpBeacon(BytesView raw);

/// Wraps a CTP payload in the TinyOS AM dispatch envelope
/// (kDispatchTinyosAm, AM id, payload).
Bytes wrapTinyosAm(std::uint8_t amId, BytesView inner);

}  // namespace kalis::net
