// IEEE 802.11 frames: data frames carrying LLC/SNAP + IP, and the management
// beacons access points emit. Modeled in infrastructure (BSS) layout with the
// three-address scheme.
//
// Data frame layout (little-endian frame control):
//   fc(2) | duration(2) | addr1(6) | addr2(6) | addr3(6) | seqctl(2) | body | FCS(4)
// For toDS=0/fromDS=1 (AP -> station): addr1 = dst, addr2 = BSSID, addr3 = src.
// For toDS=1/fromDS=0 (station -> AP): addr1 = BSSID, addr2 = src, addr3 = dst.
// We always expose logical (dst, src, bssid) regardless of direction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

enum class WifiFrameKind : std::uint8_t {
  kData,
  kBeacon,
  kProbeRequest,
  kDeauth,
};

/// Body storage is a template parameter: encoders own their body (Storage =
/// Bytes); the dissector keeps a zero-copy view into the capture buffer
/// (Storage = BytesView).
template <class Storage>
struct WifiFrameT {
  WifiFrameKind kind = WifiFrameKind::kData;
  bool toDs = false;
  bool fromDs = false;
  bool protectedFrame = false;  ///< WPA/WEP "protected" bit (feature signal)
  Mac48 dst{};
  Mac48 src{};
  Mac48 bssid{};
  std::uint16_t seqCtl = 0;
  /// For data frames: LLC/SNAP + network payload. For beacons: the SSID.
  Storage body{};
  // Wire-preservation fields (packetlib discipline: the parser keeps every
  // bit so encode(decode(x)) == x). Builders leave the defaults, which
  // reproduce the historical encoder output byte-for-byte.
  std::uint8_t dataSubtype = 0;  ///< fc subtype nibble of a data frame (QoS…)
  std::uint8_t fc1Extra = 0;     ///< fc byte 1 bits outside toDS/fromDS/prot
  std::uint16_t duration = 0;    ///< duration/ID field, verbatim
  /// FCS as seen on the wire; parsers always set it (valid or not), builders
  /// leave it unset and get a freshly computed CRC-32.
  std::optional<std::uint32_t> wireFcs{};

  Bytes encode() const;
};

using WifiFrame = WifiFrameT<Bytes>;
using WifiFrameView = WifiFrameT<BytesView>;

struct WifiDecoded {
  WifiFrameView frame;
  bool fcsValid = false;
};

std::optional<WifiDecoded> decodeWifi(BytesView raw);

// LLC/SNAP encapsulation for data frame bodies.
inline constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEthertypeIpv6 = 0x86dd;

/// Prepends the 8-byte LLC/SNAP header (AA AA 03 00 00 00 ethertype).
Bytes llcSnapWrap(std::uint16_t ethertype, BytesView payload);

struct LlcSnapDecoded {
  std::uint16_t ethertype = 0;
  BytesView payload;
};

std::optional<LlcSnapDecoded> llcSnapUnwrap(BytesView body);

/// Builds a beacon body carrying an SSID string.
Bytes beaconBody(const std::string& ssid);
std::optional<std::string> beaconSsid(BytesView body);

}  // namespace kalis::net
