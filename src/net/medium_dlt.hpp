// The single source of truth for how Kalis's radio mediums map onto pcap
// link-layer types (DLTs, per the tcpdump.org registry). Both the pcap
// reader/writer (trace/pcap.cpp) and the SnortEngine baseline consult this
// table — the baseline's "libpcap on the WiFi interface only" restriction is
// encoded here rather than in prose.
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.hpp"

namespace kalis::net {

// Registered DLT values (https://www.tcpdump.org/linktypes.html).
inline constexpr std::uint32_t kDltRaw = 101;              ///< raw IP
inline constexpr std::uint32_t kDltIeee80211 = 105;        ///< 802.11 + FCS
inline constexpr std::uint32_t kDltUser0 = 147;            ///< private range
inline constexpr std::uint32_t kDltIeee802154WithFcs = 195;
inline constexpr std::uint32_t kDltBleLinkLayer = 251;     ///< BLE LL PDUs

/// DLT_USER0, used for Kalis "mixed" captures: every record carries a
/// pseudo-header naming its medium plus full RxMeta (see trace/pcap.hpp).
inline constexpr std::uint32_t kDltKalisMixed = kDltUser0;

struct MediumDlt {
  Medium medium;
  std::uint32_t dlt;
  const char* name;
};

/// One row per Kalis medium, in Medium enum order.
inline constexpr MediumDlt kMediumDltTable[] = {
    {Medium::kIeee802154, kDltIeee802154WithFcs, "IEEE802_15_4_WITHFCS"},
    {Medium::kWifi, kDltIeee80211, "IEEE802_11"},
    {Medium::kBluetooth, kDltBleLinkLayer, "BLUETOOTH_LE_LL"},
};

/// The DLT a homogeneous capture of `m` frames uses.
std::uint32_t dltForMedium(Medium m);

/// Inverse mapping; nullopt for DLTs no Kalis medium produces (including
/// kDltKalisMixed, which is per-record, not per-file).
std::optional<Medium> mediumForDlt(std::uint32_t dlt);

/// Registry name for a DLT in the table ("IEEE802_11"), "USER0" for the
/// mixed container, or nullptr when unknown.
const char* dltName(std::uint32_t dlt);

}  // namespace kalis::net
