#include "net/zigbee.hpp"

#include "net/ieee802154.hpp"

namespace kalis::net {

namespace {
constexpr std::uint16_t kTypeMask = 0x0003;
constexpr std::uint16_t kSecurityBit = 0x0200;
}  // namespace

template <class Storage>
Bytes ZigbeeNwkFrameT<Storage>::encode() const {
  Bytes out;
  ByteWriter w(out);
  w.u8(kDispatchZigbeeNwk);
  std::uint16_t fc = static_cast<std::uint16_t>(type) & kTypeMask;
  if (securityEnabled) fc |= kSecurityBit;
  fc |= fcExtra;
  w.u16le(fc);
  w.u16le(dst.value);
  w.u16le(src.value);
  w.u8(radius);
  w.u8(seq);
  w.raw(payload);
  return out;
}

template struct ZigbeeNwkFrameT<Bytes>;
template struct ZigbeeNwkFrameT<BytesView>;

std::optional<ZigbeeNwkFrameView> decodeZigbeeNwk(BytesView raw) {
  ByteReader r(raw);
  auto dispatch = r.u8();
  if (!dispatch || *dispatch != kDispatchZigbeeNwk) return std::nullopt;
  auto fc = r.u16le();
  auto dst = r.u16le();
  auto src = r.u16le();
  auto radius = r.u8();
  auto seq = r.u8();
  if (!fc || !dst || !src || !radius || !seq) return std::nullopt;
  ZigbeeNwkFrameView f;
  f.type = static_cast<ZigbeeFrameType>(*fc & kTypeMask);
  f.securityEnabled = (*fc & kSecurityBit) != 0;
  f.fcExtra = *fc & static_cast<std::uint16_t>(~(kTypeMask | kSecurityBit));
  f.dst = Mac16{*dst};
  f.src = Mac16{*src};
  f.radius = *radius;
  f.seq = *seq;
  f.payload = r.rest();  // aliases `raw`
  return f;
}

}  // namespace kalis::net
