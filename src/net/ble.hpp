// Bluetooth Low Energy advertising PDUs (simplified link-layer view).
// Consumer devices in the testbed (smart lock, dash button) advertise over
// BLE; Kalis only needs to observe presence, identity and advertising rate.
//
// Layout: header(1: PDU type in low nibble) | length(1) | advAddr(6 LE) | advData
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

enum class BlePduType : std::uint8_t {
  kAdvInd = 0x0,
  kAdvDirectInd = 0x1,
  kAdvNonconnInd = 0x2,
  kScanReq = 0x3,
  kScanRsp = 0x4,
  kConnectReq = 0x5,
};

struct BleAdvPdu {
  BlePduType type = BlePduType::kAdvInd;
  Mac48 advAddr{};
  Bytes advData;

  Bytes encode() const;
};

std::optional<BleAdvPdu> decodeBleAdv(BytesView raw);

}  // namespace kalis::net
