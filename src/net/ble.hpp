// Bluetooth Low Energy advertising PDUs (simplified link-layer view).
// Consumer devices in the testbed (smart lock, dash button) advertise over
// BLE; Kalis only needs to observe presence, identity and advertising rate.
//
// Layout: header(1: PDU type in low nibble) | length(1) | advAddr(6 LE) | advData
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

enum class BlePduType : std::uint8_t {
  kAdvInd = 0x0,
  kAdvDirectInd = 0x1,
  kAdvNonconnInd = 0x2,
  kScanReq = 0x3,
  kScanRsp = 0x4,
  kConnectReq = 0x5,
};

/// advData storage is a template parameter: encoders own their data
/// (Storage = Bytes); the dissector keeps a zero-copy view (Storage =
/// BytesView) aliasing the capture buffer.
template <class Storage>
struct BleAdvPduT {
  BlePduType type = BlePduType::kAdvInd;
  Mac48 advAddr{};
  Storage advData{};
  // Wire-preservation fields (packetlib discipline); builders leave the
  // defaults, the parser fills them in so encode(decode(x)) == x.
  std::uint8_t headerExtra = 0;  ///< header bits outside the type nibble
  Storage trailer{};             ///< bytes past the advertised length

  Bytes encode() const;
};

using BleAdvPdu = BleAdvPduT<Bytes>;
using BleAdvPduView = BleAdvPduT<BytesView>;

/// The result's advData aliases `raw`.
std::optional<BleAdvPduView> decodeBleAdv(BytesView raw);

}  // namespace kalis::net
