#include "net/ieee802154.hpp"

#include "util/checksum.hpp"

namespace kalis::net {

namespace {
// FCF bit positions (subset we decode into named fields; everything else
// lands in fcfExtra).
constexpr std::uint16_t kFrameTypeMask = 0x0007;
constexpr std::uint16_t kSecurityBit = 0x0008;
constexpr std::uint16_t kAckRequestBit = 0x0020;
}  // namespace

template <class Storage>
Bytes Ieee802154FrameT<Storage>::encode() const {
  Bytes out;
  ByteWriter w(out);
  std::uint16_t fcf = static_cast<std::uint16_t>(type) & kFrameTypeMask;
  if (securityEnabled) fcf |= kSecurityBit;
  if (ackRequest) fcf |= kAckRequestBit;
  fcf |= fcfExtra;
  w.u16le(fcf);
  w.u8(seq);
  w.u16le(panId);
  w.u16le(dst.value);
  w.u16le(src.value);
  w.raw(payload);
  w.u16le(wireFcs ? *wireFcs : crc16Ccitt(BytesView(out)));
  return out;
}

template struct Ieee802154FrameT<Bytes>;
template struct Ieee802154FrameT<BytesView>;

std::optional<Ieee802154Decoded> decodeIeee802154(BytesView raw) {
  ByteReader r(raw);
  auto fcf = r.u16le();
  auto seq = r.u8();
  auto pan = r.u16le();
  auto dst = r.u16le();
  auto src = r.u16le();
  if (!fcf || !seq || !pan || !dst || !src) return std::nullopt;
  if (r.remaining() < 2) return std::nullopt;  // room for the FCS

  Ieee802154Decoded d;
  d.frame.type = static_cast<WpanFrameType>(*fcf & kFrameTypeMask);
  d.frame.securityEnabled = (*fcf & kSecurityBit) != 0;
  d.frame.ackRequest = (*fcf & kAckRequestBit) != 0;
  d.frame.fcfExtra =
      *fcf & static_cast<std::uint16_t>(
                 ~(kFrameTypeMask | kSecurityBit | kAckRequestBit));
  d.frame.seq = *seq;
  d.frame.panId = *pan;
  d.frame.dst = Mac16{*dst};
  d.frame.src = Mac16{*src};

  const std::size_t payloadLen = r.remaining() - 2;
  auto payload = r.take(payloadLen);
  auto fcs = r.u16le();
  d.frame.payload = *payload;  // aliases `raw`
  d.frame.wireFcs = *fcs;
  d.fcsValid = (*fcs == crc16Ccitt(raw.subspan(0, raw.size() - 2)));
  return d;
}

}  // namespace kalis::net
