#include "net/ble.hpp"

namespace kalis::net {

template <class Storage>
Bytes BleAdvPduT<Storage>::encode() const {
  Bytes out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(type) & 0x0f) | headerExtra));
  w.u8(static_cast<std::uint8_t>(6 + advData.size()));
  // BLE transmits the advertiser address least-significant byte first.
  for (int i = 5; i >= 0; --i) w.u8(advAddr.bytes[static_cast<std::size_t>(i)]);
  w.raw(advData);
  w.raw(trailer);
  return out;
}

template struct BleAdvPduT<Bytes>;
template struct BleAdvPduT<BytesView>;

std::optional<BleAdvPduView> decodeBleAdv(BytesView raw) {
  if (raw.size() < 8) return std::nullopt;
  ByteReader r(raw);
  BleAdvPduView p;
  const std::uint8_t hdr = *r.u8();
  p.type = static_cast<BlePduType>(hdr & 0x0f);
  p.headerExtra = hdr & 0xf0;
  const std::uint8_t len = *r.u8();
  if (len < 6 || raw.size() < 2u + len) return std::nullopt;
  auto addr = *r.take(6);
  for (std::size_t i = 0; i < 6; ++i) p.advAddr.bytes[i] = addr[5 - i];
  p.advData = *r.take(len - 6u);  // aliases `raw`
  p.trailer = r.rest();           // ditto
  return p;
}

}  // namespace kalis::net
