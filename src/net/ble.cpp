#include "net/ble.hpp"

namespace kalis::net {

Bytes BleAdvPdu::encode() const {
  Bytes out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(type) & 0x0f);
  w.u8(static_cast<std::uint8_t>(6 + advData.size()));
  // BLE transmits the advertiser address least-significant byte first.
  for (int i = 5; i >= 0; --i) w.u8(advAddr.bytes[static_cast<std::size_t>(i)]);
  w.raw(advData);
  return out;
}

std::optional<BleAdvPdu> decodeBleAdv(BytesView raw) {
  if (raw.size() < 8) return std::nullopt;
  ByteReader r(raw);
  BleAdvPdu p;
  p.type = static_cast<BlePduType>(*r.u8() & 0x0f);
  const std::uint8_t len = *r.u8();
  if (len < 6 || raw.size() < 2u + len) return std::nullopt;
  auto addr = *r.take(6);
  for (std::size_t i = 0; i < 6; ++i) p.advAddr.bytes[i] = addr[5 - i];
  auto data = *r.take(len - 6u);
  p.advData.assign(data.begin(), data.end());
  return p;
}

}  // namespace kalis::net
