#include "net/entity_ref.hpp"

namespace kalis::net {

std::string EntityRef::toString() const {
  switch (kind_) {
    case Kind::kNone: return "?";
    case Kind::kBroadcast: return "broadcast";
    case Kind::kMac16: return net::toString(asMac16());
    case Kind::kMac48: return net::toString(asMac48());
    case Kind::kIpv4: return net::toString(asIpv4());
    case Kind::kIpv6: return net::toString(asIpv6());
  }
  return "?";
}

}  // namespace kalis::net
