// Frozen pre-refactor dissector (see header). The decode helpers below are
// verbatim copies of the old net/ codec decoders, with the single difference
// that they populate the owning (Bytes-storage) struct variants the old
// Dissection carried. Kept self-contained so changes to the live decoders
// can never silently leak into the reference behavior.
#include "net/dissect_legacy.hpp"

#include <algorithm>

#include "util/checksum.hpp"

namespace kalis::net::legacy {

namespace {

// --- 802.15.4 (old decodeIeee802154) ----------------------------------------

constexpr std::uint16_t kFrameTypeMask = 0x0007;
constexpr std::uint16_t kSecurityBit = 0x0008;
constexpr std::uint16_t kAckRequestBit = 0x0020;

struct LegacyWpanDecoded {
  Ieee802154Frame frame;
  bool fcsValid = false;
};

std::optional<LegacyWpanDecoded> legacyDecodeIeee802154(BytesView raw) {
  ByteReader r(raw);
  auto fcf = r.u16le();
  auto seq = r.u8();
  auto pan = r.u16le();
  auto dst = r.u16le();
  auto src = r.u16le();
  if (!fcf || !seq || !pan || !dst || !src) return std::nullopt;
  if (r.remaining() < 2) return std::nullopt;  // room for the FCS

  LegacyWpanDecoded d;
  d.frame.type = static_cast<WpanFrameType>(*fcf & kFrameTypeMask);
  d.frame.securityEnabled = (*fcf & kSecurityBit) != 0;
  d.frame.ackRequest = (*fcf & kAckRequestBit) != 0;
  d.frame.seq = *seq;
  d.frame.panId = *pan;
  d.frame.dst = Mac16{*dst};
  d.frame.src = Mac16{*src};

  const std::size_t payloadLen = r.remaining() - 2;
  auto payload = r.take(payloadLen);
  auto fcs = r.u16le();
  d.frame.payload.assign(payload->begin(), payload->end());
  d.fcsValid = (*fcs == crc16Ccitt(raw.subspan(0, raw.size() - 2)));
  return d;
}

// --- 802.11 (old decodeWifi) -------------------------------------------------

Mac48 legacyReadMac(ByteReader& r) {
  Mac48 a;
  auto bytes = r.take(6);
  if (bytes) std::copy(bytes->begin(), bytes->end(), a.bytes.begin());
  return a;
}

struct LegacyWifiDecoded {
  WifiFrame frame;
  bool fcsValid = false;
};

std::optional<LegacyWifiDecoded> legacyDecodeWifi(BytesView raw) {
  if (raw.size() < 24 + 4) return std::nullopt;
  ByteReader r(raw);
  auto fc0 = *r.u8();
  auto fc1 = *r.u8();
  r.u16le();  // duration
  if ((fc0 & 0x03) != 0) return std::nullopt;  // protocol version must be 0

  LegacyWifiDecoded d;
  const std::uint8_t type = (fc0 >> 2) & 0x3;
  const std::uint8_t subtype = (fc0 >> 4) & 0xf;
  if (type == 2) {
    d.frame.kind = WifiFrameKind::kData;
  } else if (type == 0 && subtype == 8) {
    d.frame.kind = WifiFrameKind::kBeacon;
  } else if (type == 0 && subtype == 4) {
    d.frame.kind = WifiFrameKind::kProbeRequest;
  } else if (type == 0 && subtype == 12) {
    d.frame.kind = WifiFrameKind::kDeauth;
  } else {
    return std::nullopt;
  }
  d.frame.toDs = fc1 & 0x01;
  d.frame.fromDs = fc1 & 0x02;
  d.frame.protectedFrame = fc1 & 0x40;

  const Mac48 a1 = legacyReadMac(r);
  const Mac48 a2 = legacyReadMac(r);
  const Mac48 a3 = legacyReadMac(r);
  if (d.frame.toDs && !d.frame.fromDs) {
    d.frame.bssid = a1;
    d.frame.src = a2;
    d.frame.dst = a3;
  } else if (!d.frame.toDs && d.frame.fromDs) {
    d.frame.dst = a1;
    d.frame.bssid = a2;
    d.frame.src = a3;
  } else {
    d.frame.dst = a1;
    d.frame.src = a2;
    d.frame.bssid = a3;
  }
  d.frame.seqCtl = *r.u16le();

  const std::size_t bodyLen = r.remaining() - 4;
  auto body = *r.take(bodyLen);
  d.frame.body.assign(body.begin(), body.end());
  auto fcs = *r.u32le();
  d.fcsValid = (fcs == crc32(raw.subspan(0, raw.size() - 4)));
  return d;
}

// --- ZigBee NWK (old decodeZigbeeNwk) ----------------------------------------

constexpr std::uint16_t kZbTypeMask = 0x0003;
constexpr std::uint16_t kZbSecurityBit = 0x0200;

std::optional<ZigbeeNwkFrame> legacyDecodeZigbeeNwk(BytesView raw) {
  ByteReader r(raw);
  auto dispatch = r.u8();
  if (!dispatch || *dispatch != kDispatchZigbeeNwk) return std::nullopt;
  auto fc = r.u16le();
  auto dst = r.u16le();
  auto src = r.u16le();
  auto radius = r.u8();
  auto seq = r.u8();
  if (!fc || !dst || !src || !radius || !seq) return std::nullopt;
  ZigbeeNwkFrame f;
  f.type = static_cast<ZigbeeFrameType>(*fc & kZbTypeMask);
  f.securityEnabled = (*fc & kZbSecurityBit) != 0;
  f.dst = Mac16{*dst};
  f.src = Mac16{*src};
  f.radius = *radius;
  f.seq = *seq;
  auto rest = r.rest();
  f.payload.assign(rest.begin(), rest.end());
  return f;
}

// --- CTP (old decodeCtpData / decodeCtpBeacon) -------------------------------

std::optional<CtpData> legacyDecodeCtpData(BytesView raw) {
  ByteReader r(raw);
  CtpData d;
  auto options = r.u8();
  auto thl = r.u8();
  auto etx = r.u16be();
  auto origin = r.u16be();
  auto seqno = r.u8();
  auto collectId = r.u8();
  if (!options || !thl || !etx || !origin || !seqno || !collectId) {
    return std::nullopt;
  }
  d.options = *options;
  d.thl = *thl;
  d.etx = *etx;
  d.origin = Mac16{*origin};
  d.seqno = *seqno;
  d.collectId = *collectId;
  auto rest = r.rest();
  d.payload.assign(rest.begin(), rest.end());
  return d;
}

std::optional<CtpRoutingBeacon> legacyDecodeCtpBeacon(BytesView raw) {
  ByteReader r(raw);
  CtpRoutingBeacon b;
  auto options = r.u8();
  auto parent = r.u16be();
  auto etx = r.u16be();
  if (!options || !parent || !etx) return std::nullopt;
  b.options = *options;
  b.parent = Mac16{*parent};
  b.etx = *etx;
  return b;
}

// --- IPv4 (old decodeIpv4) ---------------------------------------------------

struct LegacyIpv4Decoded {
  Ipv4Header header;
  bool checksumValid = false;
  Bytes payload;
};

std::optional<LegacyIpv4Decoded> legacyDecodeIpv4(BytesView raw) {
  if (raw.size() < 20) return std::nullopt;
  ByteReader r(raw);
  auto verIhl = r.u8();
  if ((*verIhl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = (*verIhl & 0x0f) * 4u;
  if (ihl < 20 || raw.size() < ihl) return std::nullopt;
  auto tos = r.u8();
  auto totalLen = r.u16be();
  auto ident = r.u16be();
  r.u16be();  // flags/fragment
  auto ttl = r.u8();
  auto proto = r.u8();
  r.u16be();  // checksum (validated over the whole header below)
  auto src = r.u32be();
  auto dst = r.u32be();
  if (!dst) return std::nullopt;
  r.skip(ihl - 20);

  LegacyIpv4Decoded d;
  d.header.tos = *tos;
  d.header.identification = *ident;
  d.header.ttl = *ttl;
  d.header.protocol = static_cast<IpProto>(*proto);
  d.header.src = Ipv4Addr{*src};
  d.header.dst = Ipv4Addr{*dst};
  d.checksumValid = internetChecksum(raw.subspan(0, ihl)) == 0;

  std::size_t payloadLen = *totalLen >= ihl ? *totalLen - ihl : 0;
  if (payloadLen > raw.size() - ihl) payloadLen = raw.size() - ihl;
  auto payload = raw.subspan(ihl, payloadLen);
  d.payload.assign(payload.begin(), payload.end());
  return d;
}

// --- IPv6 / ICMPv6 / RPL (old decoders) --------------------------------------

struct LegacyIpv6Decoded {
  Ipv6Header header;
  Bytes payload;
};

std::optional<LegacyIpv6Decoded> legacyDecodeIpv6(BytesView raw) {
  if (raw.size() < 40) return std::nullopt;
  ByteReader r(raw);
  auto vtf = *r.u32be();
  if ((vtf >> 28) != 6) return std::nullopt;
  LegacyIpv6Decoded d;
  d.header.trafficClass = static_cast<std::uint8_t>((vtf >> 20) & 0xff);
  d.header.flowLabel = vtf & 0xfffff;
  auto payloadLen = *r.u16be();
  d.header.nextHeader = *r.u8();
  d.header.hopLimit = *r.u8();
  auto srcBytes = *r.take(16);
  auto dstBytes = *r.take(16);
  std::copy(srcBytes.begin(), srcBytes.end(), d.header.src.bytes.begin());
  std::copy(dstBytes.begin(), dstBytes.end(), d.header.dst.bytes.begin());
  std::size_t len = payloadLen;
  if (len > r.remaining()) len = r.remaining();
  auto payload = *r.take(len);
  d.payload.assign(payload.begin(), payload.end());
  return d;
}

struct LegacyIcmpv6Decoded {
  Icmpv6Message message;
  bool checksumValid = false;
};

std::optional<LegacyIcmpv6Decoded> legacyDecodeIcmpv6(BytesView raw,
                                                      const Ipv6Addr& src,
                                                      const Ipv6Addr& dst) {
  if (raw.size() < 4) return std::nullopt;
  ByteReader r(raw);
  LegacyIcmpv6Decoded d;
  d.message.type = static_cast<Icmpv6Type>(*r.u8());
  d.message.code = *r.u8();
  r.u16be();  // checksum
  auto body = r.rest();
  d.message.body.assign(body.begin(), body.end());
  const Bytes pseudo =
      ipv6PseudoHeader(src, dst, static_cast<std::uint32_t>(raw.size()),
                       static_cast<std::uint8_t>(IpProto::kIcmpv6));
  d.checksumValid = internetChecksum2(pseudo, raw) == 0;
  return d;
}

std::optional<RplDio> legacyDecodeRplDio(BytesView body) {
  if (body.size() < 24) return std::nullopt;
  ByteReader r(body);
  RplDio d;
  d.instanceId = *r.u8();
  d.versionNumber = *r.u8();
  d.rank = *r.u16be();
  r.u8();
  d.dtsn = *r.u8();
  r.u8();
  r.u8();
  auto id = *r.take(16);
  std::copy(id.begin(), id.end(), d.dodagId.bytes.begin());
  return d;
}

std::optional<RplDao> legacyDecodeRplDao(BytesView body) {
  if (body.size() < 36) return std::nullopt;
  ByteReader r(body);
  RplDao d;
  d.instanceId = *r.u8();
  r.u8();
  r.u8();
  d.daoSequence = *r.u8();
  auto id = *r.take(16);
  std::copy(id.begin(), id.end(), d.dodagId.bytes.begin());
  auto target = *r.take(16);
  std::copy(target.begin(), target.end(), d.target.bytes.begin());
  return d;
}

// --- Transport (old decodeTcp / decodeUdp / decodeIcmp) ----------------------

struct LegacyTcpDecoded {
  TcpSegment segment;
  bool checksumValid = false;
};

std::optional<LegacyTcpDecoded> legacyDecodeTcp(BytesView raw, Ipv4Addr src,
                                                Ipv4Addr dst) {
  if (raw.size() < 20) return std::nullopt;
  ByteReader r(raw);
  LegacyTcpDecoded d;
  d.segment.srcPort = *r.u16be();
  d.segment.dstPort = *r.u16be();
  d.segment.seq = *r.u32be();
  d.segment.ackNo = *r.u32be();
  auto offsetByte = *r.u8();
  const std::size_t headerLen = (offsetByte >> 4) * 4u;
  if (headerLen < 20 || headerLen > raw.size()) return std::nullopt;
  d.segment.flags = TcpFlags::decode(*r.u8());
  d.segment.window = *r.u16be();
  r.u16be();  // checksum
  r.u16be();  // urgent
  r.skip(headerLen - 20);
  auto payload = r.rest();
  d.segment.payload.assign(payload.begin(), payload.end());
  const Bytes pseudo = ipv4PseudoHeader(src, dst, IpProto::kTcp,
                                        static_cast<std::uint16_t>(raw.size()));
  d.checksumValid = internetChecksum2(pseudo, raw) == 0;
  return d;
}

struct LegacyUdpDecoded {
  UdpDatagram datagram;
  bool checksumValid = false;
};

std::optional<LegacyUdpDecoded> legacyDecodeUdp(BytesView raw, Ipv4Addr src,
                                                Ipv4Addr dst) {
  if (raw.size() < 8) return std::nullopt;
  ByteReader r(raw);
  LegacyUdpDecoded d;
  d.datagram.srcPort = *r.u16be();
  d.datagram.dstPort = *r.u16be();
  auto len = *r.u16be();
  r.u16be();  // checksum
  if (len < 8 || len > raw.size()) return std::nullopt;
  auto payload = raw.subspan(8, len - 8);
  d.datagram.payload.assign(payload.begin(), payload.end());
  const Bytes pseudo =
      ipv4PseudoHeader(src, dst, IpProto::kUdp, static_cast<std::uint16_t>(len));
  d.checksumValid = internetChecksum2(pseudo, raw.subspan(0, len)) == 0;
  return d;
}

struct LegacyIcmpDecoded {
  IcmpMessage message;
  bool checksumValid = false;
};

std::optional<LegacyIcmpDecoded> legacyDecodeIcmp(BytesView raw) {
  if (raw.size() < 8) return std::nullopt;
  ByteReader r(raw);
  LegacyIcmpDecoded d;
  d.message.type = static_cast<IcmpType>(*r.u8());
  d.message.code = *r.u8();
  r.u16be();  // checksum
  d.message.identifier = *r.u16be();
  d.message.sequence = *r.u16be();
  auto payload = r.rest();
  d.message.payload.assign(payload.begin(), payload.end());
  d.checksumValid = internetChecksum(raw) == 0;
  return d;
}

// --- BLE (old decodeBleAdv) --------------------------------------------------

std::optional<BleAdvPdu> legacyDecodeBleAdv(BytesView raw) {
  if (raw.size() < 8) return std::nullopt;
  ByteReader r(raw);
  BleAdvPdu p;
  p.type = static_cast<BlePduType>(*r.u8() & 0x0f);
  const std::uint8_t len = *r.u8();
  if (len < 6 || raw.size() < 2u + len) return std::nullopt;
  auto addr = *r.take(6);
  for (std::size_t i = 0; i < 6; ++i) p.advAddr.bytes[i] = addr[5 - i];
  auto data = *r.take(len - 6u);
  p.advData.assign(data.begin(), data.end());
  return p;
}

// --- Old dissect() logic -----------------------------------------------------

void classifyTcp(LegacyDissection& d) {
  const TcpFlags& f = d.tcp->flags;
  if (f.isSynOnly()) {
    d.type = PacketType::kTcpSyn;
  } else if (f.isSynAck()) {
    d.type = PacketType::kTcpSynAck;
  } else if (f.rst) {
    d.type = PacketType::kTcpRst;
  } else if (f.fin) {
    d.type = PacketType::kTcpFin;
  } else if (!d.tcp->payload.empty()) {
    d.type = PacketType::kTcpData;
  } else if (f.ack) {
    d.type = PacketType::kTcpAck;
  } else {
    d.type = PacketType::kTcpData;
  }
}

void dissectIpv4Payload(LegacyDissection& d, const LegacyIpv4Decoded& ip) {
  d.ipv4 = ip.header;
  switch (ip.header.protocol) {
    case IpProto::kTcp: {
      if (auto t = legacyDecodeTcp(BytesView(ip.payload), ip.header.src,
                                   ip.header.dst)) {
        d.tcp = t->segment;
        d.appPayload = t->segment.payload;
        classifyTcp(d);
      } else {
        d.type = PacketType::kMalformed;
      }
      break;
    }
    case IpProto::kUdp: {
      if (auto u = legacyDecodeUdp(BytesView(ip.payload), ip.header.src,
                                   ip.header.dst)) {
        d.udp = u->datagram;
        d.appPayload = u->datagram.payload;
        d.type = PacketType::kUdp;
      } else {
        d.type = PacketType::kMalformed;
      }
      break;
    }
    case IpProto::kIcmp: {
      if (auto m = legacyDecodeIcmp(BytesView(ip.payload))) {
        d.icmp = m->message;
        d.appPayload = m->message.payload;
        switch (m->message.type) {
          case IcmpType::kEchoRequest: d.type = PacketType::kIcmpEchoReq; break;
          case IcmpType::kEchoReply: d.type = PacketType::kIcmpEchoRep; break;
          default: d.type = PacketType::kIcmpOther; break;
        }
      } else {
        d.type = PacketType::kMalformed;
      }
      break;
    }
    default:
      d.type = PacketType::kIpOther;
      break;
  }
}

void dissectIpv6Payload(LegacyDissection& d, const LegacyIpv6Decoded& ip) {
  d.ipv6 = ip.header;
  if (ip.header.nextHeader != static_cast<std::uint8_t>(IpProto::kIcmpv6)) {
    d.type = PacketType::kSixlowpanOther;
    d.appPayload = ip.payload;
    return;
  }
  auto m = legacyDecodeIcmpv6(BytesView(ip.payload), ip.header.src, ip.header.dst);
  if (!m) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.icmpv6 = m->message;
  switch (m->message.type) {
    case Icmpv6Type::kEchoRequest:
      d.type = PacketType::kIcmpv6EchoReq;
      break;
    case Icmpv6Type::kEchoReply:
      d.type = PacketType::kIcmpv6EchoRep;
      break;
    case Icmpv6Type::kRplControl:
      if (m->message.code == kRplCodeDio) {
        d.rplDio = legacyDecodeRplDio(BytesView(m->message.body));
        d.type = d.rplDio ? PacketType::kRplDio : PacketType::kMalformed;
      } else if (m->message.code == kRplCodeDao) {
        d.rplDao = legacyDecodeRplDao(BytesView(m->message.body));
        d.type = d.rplDao ? PacketType::kRplDao : PacketType::kMalformed;
      } else {
        d.type = PacketType::kSixlowpanOther;
      }
      break;
  }
}

void dissectWpan(LegacyDissection& d, BytesView raw) {
  auto decoded = legacyDecodeIeee802154(raw);
  if (!decoded) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.wpan = decoded->frame;
  d.wpanFcsValid = decoded->fcsValid;
  const Bytes& payload = d.wpan->payload;

  if (d.wpan->type == WpanFrameType::kAck) {
    d.type = PacketType::kWpanAck;
    return;
  }
  if (d.wpan->type == WpanFrameType::kBeacon) {
    d.type = PacketType::kWpanBeacon;
    return;
  }
  if (payload.empty()) {
    d.type = PacketType::kUnknown;
    return;
  }

  const std::uint8_t dispatch = payload[0];
  const BytesView inner = BytesView(payload).subspan(1);
  if (dispatch == kDispatchTinyosAm) {
    if (inner.empty()) {
      d.type = PacketType::kMalformed;
      return;
    }
    const std::uint8_t amId = inner[0];
    const BytesView amPayload = inner.subspan(1);
    if (amId == kAmCtpData) {
      d.ctpData = legacyDecodeCtpData(amPayload);
      if (d.ctpData) {
        d.appPayload = d.ctpData->payload;
        d.type = PacketType::kCtpData;
      } else {
        d.type = PacketType::kMalformed;
      }
    } else if (amId == kAmCtpRouting) {
      d.ctpBeacon = legacyDecodeCtpBeacon(amPayload);
      d.type = d.ctpBeacon ? PacketType::kCtpRouting : PacketType::kMalformed;
    } else {
      d.appPayload.assign(amPayload.begin(), amPayload.end());
      d.type = PacketType::kUnknown;
    }
  } else if (dispatch == kDispatchZigbeeNwk) {
    d.zigbee = legacyDecodeZigbeeNwk(BytesView(payload));
    if (!d.zigbee) {
      d.type = PacketType::kMalformed;
      return;
    }
    d.appPayload = d.zigbee->payload;
    d.type = d.zigbee->type == ZigbeeFrameType::kCommand
                 ? PacketType::kZigbeeRouting
                 : PacketType::kZigbeeData;
  } else if (dispatch == kDispatchIpv6Uncompressed) {
    auto ip = legacyDecodeIpv6(inner);
    if (!ip) {
      d.type = PacketType::kMalformed;
      return;
    }
    dissectIpv6Payload(d, *ip);
  } else {
    d.appPayload = payload;
    d.type = PacketType::kUnknown;
  }
}

void dissectWifi(LegacyDissection& d, BytesView raw) {
  auto decoded = legacyDecodeWifi(raw);
  if (!decoded) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.wifi = decoded->frame;
  d.wifiFcsValid = decoded->fcsValid;
  switch (d.wifi->kind) {
    case WifiFrameKind::kBeacon:
      d.type = PacketType::kWifiBeacon;
      return;
    case WifiFrameKind::kProbeRequest:
      d.type = PacketType::kWifiProbe;
      return;
    case WifiFrameKind::kDeauth:
      d.type = PacketType::kWifiDeauth;
      return;
    case WifiFrameKind::kData:
      break;
  }
  auto llc = llcSnapUnwrap(BytesView(d.wifi->body));
  if (!llc) {
    d.type = PacketType::kUnknown;
    return;
  }
  if (llc->ethertype == kEthertypeIpv4) {
    auto ip = legacyDecodeIpv4(llc->payload);
    if (!ip) {
      d.type = PacketType::kMalformed;
      return;
    }
    dissectIpv4Payload(d, *ip);
  } else if (llc->ethertype == kEthertypeIpv6) {
    auto ip = legacyDecodeIpv6(llc->payload);
    if (!ip) {
      d.type = PacketType::kMalformed;
      return;
    }
    dissectIpv6Payload(d, *ip);
  } else {
    d.type = PacketType::kUnknown;
  }
}

void dissectBle(LegacyDissection& d, BytesView raw) {
  d.ble = legacyDecodeBleAdv(raw);
  if (!d.ble) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.appPayload = d.ble->advData;
  d.type = (d.ble->type == BlePduType::kScanReq ||
            d.ble->type == BlePduType::kScanRsp)
               ? PacketType::kBleScan
               : PacketType::kBleAdv;
}

}  // namespace

std::string LegacyDissection::linkSource() const {
  if (wpan) return toString(wpan->src);
  if (wifi) return toString(wifi->src);
  if (ble) return toString(ble->advAddr);
  return "?";
}

std::string LegacyDissection::linkDest() const {
  if (wpan) return toString(wpan->dst);
  if (wifi) return toString(wifi->dst);
  if (ble) return "broadcast";
  return "?";
}

std::optional<std::string> LegacyDissection::networkSource() const {
  if (ipv4) return toString(ipv4->src);
  if (ipv6) return toString(ipv6->src);
  return std::nullopt;
}

std::optional<std::string> LegacyDissection::networkDest() const {
  if (ipv4) return toString(ipv4->dst);
  if (ipv6) return toString(ipv6->dst);
  return std::nullopt;
}

bool LegacyDissection::isBroadcastDest() const {
  if (wpan) return wpan->dst.isBroadcast();
  if (wifi) return wifi->dst.isBroadcast();
  if (ble) return true;
  return false;
}

LegacyDissection dissectLegacy(const CapturedPacket& pkt) {
  LegacyDissection d;
  d.medium = pkt.medium;
  switch (pkt.medium) {
    case Medium::kIeee802154:
      dissectWpan(d, BytesView(pkt.raw));
      break;
    case Medium::kWifi:
      dissectWifi(d, BytesView(pkt.raw));
      break;
    case Medium::kBluetooth:
      dissectBle(d, BytesView(pkt.raw));
      break;
  }
  return d;
}

}  // namespace kalis::net::legacy
