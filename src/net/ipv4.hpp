// IPv4 header (RFC 791), standard 20-byte header without options.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kIcmpv6 = 58,
};

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  Ipv4Addr src{};
  Ipv4Addr dst{};

  /// Serializes header + payload with correct totalLength and checksum.
  Bytes encode(BytesView payload) const;
};

struct Ipv4Decoded {
  Ipv4Header header;
  bool checksumValid = false;
  BytesView payload;  ///< aliases the decoded buffer
};

std::optional<Ipv4Decoded> decodeIpv4(BytesView raw);

/// The 12-byte IPv4 pseudo-header used by TCP/UDP checksums.
Bytes ipv4PseudoHeader(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                       std::uint16_t length);

}  // namespace kalis::net
