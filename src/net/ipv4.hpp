// IPv4 header (RFC 791). Builders emit the standard 20-byte options-free
// header; the parser additionally preserves options, flags/fragment bits and
// the on-wire checksum/length so the codec can re-emit frames verbatim.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace kalis::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kIcmpv6 = 58,
};

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  Ipv4Addr src{};
  Ipv4Addr dst{};
  // Wire-preservation fields (packetlib discipline). Builders leave the
  // defaults, which reproduce the historical 20-byte options-free header
  // byte-for-byte; the parser fills them in so encode(decode(x)) == x.
  /// IHL beyond 20 bytes, verbatim. A view aliasing the decoded buffer
  /// (keeps the header trivially destructible for BatchArena storage);
  /// builders leave it empty.
  BytesView options{};
  std::uint16_t flagsFrag = 0x4000;   ///< flags + fragment offset (DF default)
  /// Checksum / total length as seen on the wire; parsers always set them
  /// (even when wrong), builders leave them unset and get computed values.
  std::optional<std::uint16_t> wireChecksum{};
  std::optional<std::uint16_t> wireTotalLen{};

  /// Serializes header + payload with correct totalLength and checksum
  /// (or the verbatim wire values when set).
  Bytes encode(BytesView payload) const;
};

struct Ipv4Decoded {
  Ipv4Header header;
  bool checksumValid = false;
  BytesView payload;  ///< aliases the decoded buffer
  /// Bytes past totalLength (link-layer padding / slack), aliases the buffer.
  BytesView trailer;
};

std::optional<Ipv4Decoded> decodeIpv4(BytesView raw);

/// The 12-byte IPv4 pseudo-header used by TCP/UDP checksums.
Bytes ipv4PseudoHeader(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                       std::uint16_t length);

}  // namespace kalis::net
