// Zero-copy packet parsing primitives.
//
// PacketView is a non-owning cursor over a captured frame, in the spirit of
// the kernel sk_buff's pull/trim discipline: dissectors *pull* headers off
// the front and *trim* trailers (FCS) off the end, and every sub-slice they
// hand out is a BytesView aliasing the original capture buffer. Nothing is
// copied; the caller guarantees the backing buffer outlives every view
// derived from it (see DESIGN.md §10 for the aliasing contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace kalis::net {

class PacketView {
 public:
  constexpr PacketView() = default;
  explicit constexpr PacketView(BytesView frame) : frame_(frame), end_(frame.size()) {}

  /// The whole backing frame, regardless of pulls/trims.
  constexpr BytesView frame() const { return frame_; }
  /// Bytes between the pull cursor and the trimmed end.
  BytesView data() const { return frame_.subspan(offset_, end_ - offset_); }
  constexpr std::size_t offset() const { return offset_; }
  constexpr std::size_t remaining() const { return end_ - offset_; }
  constexpr bool empty() const { return offset_ == end_; }

  /// First un-pulled byte, if any (protocol dispatch byte peeking).
  std::optional<std::uint8_t> peek() const {
    if (empty()) return std::nullopt;
    return frame_[offset_];
  }

  /// Advances the header cursor by n; fails (untouched) past the end.
  constexpr bool pull(std::size_t n) {
    if (remaining() < n) return false;
    offset_ += n;
    return true;
  }

  /// Pulls one byte and returns it — the dispatch-walk primitive.
  std::optional<std::uint8_t> pullByte() {
    if (empty()) return std::nullopt;
    return frame_[offset_++];
  }

  /// Drops n trailer bytes (an FCS) from the logical end.
  constexpr bool trimEnd(std::size_t n) {
    if (remaining() < n) return false;
    end_ -= n;
    return true;
  }

 private:
  BytesView frame_{};
  std::size_t offset_ = 0;
  std::size_t end_ = 0;
};

}  // namespace kalis::net
