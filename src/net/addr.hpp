// Link-layer and network-layer addresses.
//
// The simulated testbed mixes three address families, matching the paper's
// setup: 16-bit IEEE 802.15.4 short addresses (TelosB/CTP/ZigBee side),
// EUI-48 MAC addresses (WiFi side), and IPv4/IPv6 addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace kalis::net {

/// IEEE 802.15.4 16-bit short address.
struct Mac16 {
  std::uint16_t value = 0xffff;  ///< 0xffff is the broadcast address.

  static constexpr std::uint16_t kBroadcast = 0xffff;

  constexpr bool isBroadcast() const { return value == kBroadcast; }
  auto operator<=>(const Mac16&) const = default;
};

std::string toString(Mac16 a);
std::optional<Mac16> parseMac16(std::string_view s);

/// EUI-48 MAC address (WiFi / Bluetooth).
struct Mac48 {
  std::array<std::uint8_t, 6> bytes{};

  static Mac48 broadcast();
  bool isBroadcast() const;
  auto operator<=>(const Mac48&) const = default;
};

std::string toString(const Mac48& a);
std::optional<Mac48> parseMac48(std::string_view s);

/// IPv4 address.
struct Ipv4Addr {
  std::uint32_t value = 0;  ///< host-order representation of the 4 octets.

  static constexpr Ipv4Addr broadcast() { return {0xffffffffu}; }
  constexpr bool isBroadcast() const { return value == 0xffffffffu; }
  auto operator<=>(const Ipv4Addr&) const = default;
};

std::string toString(Ipv4Addr a);
std::optional<Ipv4Addr> parseIpv4(std::string_view s);

/// IPv6 address (used by the 6LoWPAN/RPL side).
struct Ipv6Addr {
  std::array<std::uint8_t, 16> bytes{};

  /// fe80::/64 link-local address derived from a 16-bit short address, the
  /// standard 6LoWPAN mapping for short-address interfaces.
  static Ipv6Addr linkLocalFromShort(Mac16 shortAddr);
  /// ff02::1 all-nodes multicast.
  static Ipv6Addr allNodesMulticast();
  bool isMulticast() const { return bytes[0] == 0xff; }
  /// Recovers the 16-bit short address embedded by linkLocalFromShort.
  std::optional<Mac16> embeddedShort() const;
  auto operator<=>(const Ipv6Addr&) const = default;
};

std::string toString(const Ipv6Addr& a);

}  // namespace kalis::net

template <>
struct std::hash<kalis::net::Mac16> {
  std::size_t operator()(const kalis::net::Mac16& a) const noexcept {
    return std::hash<std::uint16_t>{}(a.value);
  }
};

template <>
struct std::hash<kalis::net::Mac48> {
  std::size_t operator()(const kalis::net::Mac48& a) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (auto b : a.bytes) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }
};

template <>
struct std::hash<kalis::net::Ipv4Addr> {
  std::size_t operator()(const kalis::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<kalis::net::Ipv6Addr> {
  std::size_t operator()(const kalis::net::Ipv6Addr& a) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (auto b : a.bytes) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }
};
