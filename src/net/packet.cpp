#include "net/packet.hpp"

#include <atomic>

#include "net/packet_view.hpp"

namespace kalis::net {

namespace {
std::atomic<std::uint64_t> g_dissectCalls{0};
}  // namespace

std::uint64_t dissectCallCount() {
  return g_dissectCalls.load(std::memory_order_relaxed);
}

const char* mediumName(Medium m) {
  switch (m) {
    case Medium::kIeee802154: return "802.15.4";
    case Medium::kWifi: return "WiFi";
    case Medium::kBluetooth: return "Bluetooth";
  }
  return "?";
}

const char* packetTypeName(PacketType t) {
  switch (t) {
    case PacketType::kUnknown: return "Unknown";
    case PacketType::kMalformed: return "Malformed";
    case PacketType::kWpanAck: return "WPANAck";
    case PacketType::kWpanBeacon: return "WPANBeacon";
    case PacketType::kCtpData: return "CTPData";
    case PacketType::kCtpRouting: return "CTPRouting";
    case PacketType::kZigbeeData: return "ZigbeeData";
    case PacketType::kZigbeeRouting: return "ZigbeeRouting";
    case PacketType::kRplDio: return "RPLDIO";
    case PacketType::kRplDao: return "RPLDAO";
    case PacketType::kIcmpv6EchoReq: return "ICMPv6EchoReq";
    case PacketType::kIcmpv6EchoRep: return "ICMPv6EchoRep";
    case PacketType::kSixlowpanOther: return "SixlowpanOther";
    case PacketType::kWifiBeacon: return "WifiBeacon";
    case PacketType::kWifiProbe: return "WifiProbe";
    case PacketType::kWifiDeauth: return "WifiDeauth";
    case PacketType::kTcpSyn: return "TCPSYN";
    case PacketType::kTcpSynAck: return "TCPSYNACK";
    case PacketType::kTcpAck: return "TCPACK";
    case PacketType::kTcpRst: return "TCPRST";
    case PacketType::kTcpFin: return "TCPFIN";
    case PacketType::kTcpData: return "TCPData";
    case PacketType::kUdp: return "UDP";
    case PacketType::kIcmpEchoReq: return "ICMPEchoReq";
    case PacketType::kIcmpEchoRep: return "ICMPEchoRep";
    case PacketType::kIcmpOther: return "ICMPOther";
    case PacketType::kIpOther: return "IPOther";
    case PacketType::kBleAdv: return "BLEAdv";
    case PacketType::kBleScan: return "BLEScan";
  }
  return "?";
}

bool Dissection::isBroadcastDest() const {
  if (wpan) return wpan->dst.isBroadcast();
  if (wifi) return wifi->dst.isBroadcast();
  if (ble) return true;
  return false;
}

namespace {

void classifyTcp(Dissection& d) {
  const TcpFlags& f = d.tcp->flags;
  if (f.isSynOnly()) {
    d.type = PacketType::kTcpSyn;
  } else if (f.isSynAck()) {
    d.type = PacketType::kTcpSynAck;
  } else if (f.rst) {
    d.type = PacketType::kTcpRst;
  } else if (f.fin) {
    d.type = PacketType::kTcpFin;
  } else if (!d.tcp->payload.empty()) {
    d.type = PacketType::kTcpData;
  } else if (f.ack) {
    d.type = PacketType::kTcpAck;
  } else {
    d.type = PacketType::kTcpData;
  }
}

void dissectIpv4Payload(Dissection& d, const Ipv4Decoded& ip) {
  d.ipv4 = ip.header;
  d.l3Payload = ip.payload;
  d.l3Trailer = ip.trailer;
  switch (ip.header.protocol) {
    case IpProto::kTcp: {
      if (auto t = decodeTcp(ip.payload, ip.header.src, ip.header.dst)) {
        d.tcp = t->segment;
        d.appPayload = t->segment.payload;
        classifyTcp(d);
      } else {
        d.type = PacketType::kMalformed;
      }
      break;
    }
    case IpProto::kUdp: {
      if (auto u = decodeUdp(ip.payload, ip.header.src, ip.header.dst)) {
        d.udp = u->datagram;
        d.appPayload = u->datagram.payload;
        d.l4Trailer = ip.payload.subspan(8 + u->datagram.payload.size());
        d.type = PacketType::kUdp;
      } else {
        d.type = PacketType::kMalformed;
      }
      break;
    }
    case IpProto::kIcmp: {
      if (auto m = decodeIcmp(ip.payload)) {
        d.icmp = m->message;
        d.appPayload = m->message.payload;
        switch (m->message.type) {
          case IcmpType::kEchoRequest: d.type = PacketType::kIcmpEchoReq; break;
          case IcmpType::kEchoReply: d.type = PacketType::kIcmpEchoRep; break;
          default: d.type = PacketType::kIcmpOther; break;
        }
      } else {
        d.type = PacketType::kMalformed;
      }
      break;
    }
    default:
      d.type = PacketType::kIpOther;
      break;
  }
}

void dissectIpv6Payload(Dissection& d, const Ipv6Decoded& ip) {
  d.ipv6 = ip.header;
  d.l3Payload = ip.payload;
  d.l3Trailer = ip.trailer;
  if (ip.header.nextHeader != static_cast<std::uint8_t>(IpProto::kIcmpv6)) {
    d.type = PacketType::kSixlowpanOther;
    d.appPayload = ip.payload;
    return;
  }
  auto m = decodeIcmpv6(ip.payload, ip.header.src, ip.header.dst);
  if (!m) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.icmpv6 = m->message;
  switch (m->message.type) {
    case Icmpv6Type::kEchoRequest:
      d.type = PacketType::kIcmpv6EchoReq;
      break;
    case Icmpv6Type::kEchoReply:
      d.type = PacketType::kIcmpv6EchoRep;
      break;
    case Icmpv6Type::kRplControl:
      if (m->message.code == kRplCodeDio) {
        d.rplDio = decodeRplDio(m->message.body);
        d.type = d.rplDio ? PacketType::kRplDio : PacketType::kMalformed;
      } else if (m->message.code == kRplCodeDao) {
        d.rplDao = decodeRplDao(m->message.body);
        d.type = d.rplDao ? PacketType::kRplDao : PacketType::kMalformed;
      } else {
        d.type = PacketType::kSixlowpanOther;
      }
      break;
  }
}

void dissectWpan(Dissection& d, BytesView raw) {
  auto decoded = decodeIeee802154(raw);
  if (!decoded) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.wpan = decoded->frame;
  d.wpanFcsValid = decoded->fcsValid;
  const BytesView payload = d.wpan->payload;

  if (d.wpan->type == WpanFrameType::kAck) {
    d.type = PacketType::kWpanAck;
    return;
  }
  if (d.wpan->type == WpanFrameType::kBeacon) {
    d.type = PacketType::kWpanBeacon;
    return;
  }
  if (payload.empty()) {
    d.type = PacketType::kUnknown;
    return;
  }

  // skb-style dispatch walk: pull protocol tag bytes off the front of the
  // payload view; everything handed to inner decoders aliases the frame.
  PacketView cursor(payload);
  const std::uint8_t dispatch = *cursor.pullByte();
  const BytesView inner = cursor.data();
  if (dispatch == kDispatchTinyosAm) {
    const auto amId = cursor.pullByte();
    if (!amId) {
      d.type = PacketType::kMalformed;
      return;
    }
    const BytesView amPayload = cursor.data();
    if (*amId == kAmCtpData) {
      d.ctpData = decodeCtpData(amPayload);
      if (d.ctpData) {
        d.appPayload = d.ctpData->payload;
        d.type = PacketType::kCtpData;
      } else {
        d.type = PacketType::kMalformed;
      }
    } else if (*amId == kAmCtpRouting) {
      d.ctpBeacon = decodeCtpBeacon(amPayload);
      d.type = d.ctpBeacon ? PacketType::kCtpRouting : PacketType::kMalformed;
    } else {
      d.appPayload = amPayload;
      d.type = PacketType::kUnknown;
    }
  } else if (dispatch == kDispatchZigbeeNwk) {
    d.zigbee = decodeZigbeeNwk(payload);
    if (!d.zigbee) {
      d.type = PacketType::kMalformed;
      return;
    }
    d.appPayload = d.zigbee->payload;
    d.type = d.zigbee->type == ZigbeeFrameType::kCommand
                 ? PacketType::kZigbeeRouting
                 : PacketType::kZigbeeData;
  } else if (dispatch == kDispatchIpv6Uncompressed) {
    auto ip = decodeIpv6(inner);
    if (!ip) {
      d.type = PacketType::kMalformed;
      return;
    }
    dissectIpv6Payload(d, *ip);
  } else {
    d.appPayload = payload;
    d.type = PacketType::kUnknown;
  }
}

void dissectWifi(Dissection& d, BytesView raw) {
  auto decoded = decodeWifi(raw);
  if (!decoded) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.wifi = decoded->frame;
  d.wifiFcsValid = decoded->fcsValid;
  switch (d.wifi->kind) {
    case WifiFrameKind::kBeacon:
      d.type = PacketType::kWifiBeacon;
      return;
    case WifiFrameKind::kProbeRequest:
      d.type = PacketType::kWifiProbe;
      return;
    case WifiFrameKind::kDeauth:
      d.type = PacketType::kWifiDeauth;
      return;
    case WifiFrameKind::kData:
      break;
  }
  auto llc = llcSnapUnwrap(d.wifi->body);
  if (!llc) {
    d.type = PacketType::kUnknown;
    return;
  }
  d.llcHeader = d.wifi->body.subspan(0, 8);
  if (llc->ethertype == kEthertypeIpv4) {
    auto ip = decodeIpv4(llc->payload);
    if (!ip) {
      d.type = PacketType::kMalformed;
      return;
    }
    dissectIpv4Payload(d, *ip);
  } else if (llc->ethertype == kEthertypeIpv6) {
    auto ip = decodeIpv6(llc->payload);
    if (!ip) {
      d.type = PacketType::kMalformed;
      return;
    }
    dissectIpv6Payload(d, *ip);
  } else {
    d.type = PacketType::kUnknown;
  }
}

void dissectBle(Dissection& d, BytesView raw) {
  d.ble = decodeBleAdv(raw);
  if (!d.ble) {
    d.type = PacketType::kMalformed;
    return;
  }
  d.appPayload = d.ble->advData;
  d.type = (d.ble->type == BlePduType::kScanReq ||
            d.ble->type == BlePduType::kScanRsp)
               ? PacketType::kBleScan
               : PacketType::kBleAdv;
}

}  // namespace

Dissection dissect(const CapturedPacket& pkt) {
  g_dissectCalls.fetch_add(1, std::memory_order_relaxed);
  Dissection d;
  d.medium = pkt.medium;
  d.raw = BytesView(pkt.raw);
  switch (pkt.medium) {
    case Medium::kIeee802154:
      dissectWpan(d, BytesView(pkt.raw));
      break;
    case Medium::kWifi:
      dissectWifi(d, BytesView(pkt.raw));
      break;
    case Medium::kBluetooth:
      dissectBle(d, BytesView(pkt.raw));
      break;
  }
  return d;
}

}  // namespace kalis::net
