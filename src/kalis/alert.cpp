#include "kalis/alert.hpp"

#include <sstream>

namespace kalis::ids {

const char* attackName(AttackType t) {
  switch (t) {
    case AttackType::kNone: return "None";
    case AttackType::kIcmpFlood: return "ICMPFlood";
    case AttackType::kSmurf: return "Smurf";
    case AttackType::kSynFlood: return "SYNFlood";
    case AttackType::kSelectiveForwarding: return "SelectiveForwarding";
    case AttackType::kBlackhole: return "Blackhole";
    case AttackType::kWormhole: return "Wormhole";
    case AttackType::kReplication: return "Replication";
    case AttackType::kSybil: return "Sybil";
    case AttackType::kSinkhole: return "Sinkhole";
    case AttackType::kDataAlteration: return "DataAlteration";
    case AttackType::kHelloFlood: return "HelloFlood";
    case AttackType::kDeauthFlood: return "DeauthFlood";
    case AttackType::kUnknownAnomaly: return "UnknownAnomaly";
  }
  return "?";
}

std::string toString(const Alert& a) {
  std::ostringstream oss;
  oss << "[" << toSeconds(a.time) << "s] " << attackName(a.type) << " by "
      << a.moduleName << " victim=" << (a.victimEntity.empty() ? "-" : a.victimEntity)
      << " suspects={";
  for (std::size_t i = 0; i < a.suspectEntities.size(); ++i) {
    if (i) oss << ",";
    oss << a.suspectEntities[i];
  }
  oss << "}";
  if (!a.detail.empty()) oss << " : " << a.detail;
  return oss.str();
}

}  // namespace kalis::ids
