// Attack taxonomy ids and the alert record detection modules emit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace kalis::ids {

/// Attacks covered by the detection-module library (paper §III-B, Fig. 3).
enum class AttackType : std::uint8_t {
  kNone = 0,
  kIcmpFlood,
  kSmurf,
  kSynFlood,
  kSelectiveForwarding,
  kBlackhole,
  kWormhole,
  kReplication,
  kSybil,
  kSinkhole,
  kDataAlteration,
  kHelloFlood,
  kDeauthFlood,
  kUnknownAnomaly,
};

const char* attackName(AttackType t);
inline constexpr std::size_t kNumAttackTypes =
    static_cast<std::size_t>(AttackType::kUnknownAnomaly) + 1;

/// A detection event raised by a module and routed to subscribed parties
/// (alert log, countermeasure engine, SIEM export).
struct Alert {
  AttackType type = AttackType::kNone;
  SimTime time = 0;
  std::string moduleName;
  std::string victimEntity;                 ///< entity id of the target
  std::vector<std::string> suspectEntities; ///< entities to act against
  std::string detail;
  double confidence = 1.0;
};

std::string toString(const Alert& a);

}  // namespace kalis::ids
