#include "kalis/kalis_node.hpp"

#include "util/log.hpp"

namespace kalis::ids {

KalisNode::KalisNode(sim::Simulator& sim) : KalisNode(sim, Options{}) {}

KalisNode::KalisNode(sim::Simulator& sim, Options options)
    : sim_(sim),
      options_(std::move(options)),
      kb_(options_.id),
      dataStore_(options_.dataStore),
      manager_(kb_, dataStore_),
      alive_(std::make_shared<bool>(true)) {
  kb_.setClock([this] { return sim_.now(); });
}

void KalisNode::sendToPeers(const Knowgget& k) {
  // Push the changed collective knowgget to every discovered peer over a
  // one-way channel with the configured latency.
  for (KalisNode* peer : peers_) {
    ++collectiveSent_;
    std::weak_ptr<bool> peerAlive = peer->alive_;
    sim_.schedule(options_.peerSyncLatency, [peer, peerAlive, k] {
      if (peerAlive.expired()) return;
      peer->receiveCollective(k);
    });
  }
}

KalisNode::~KalisNode() { *alive_ = false; }

void KalisNode::receiveCollective(const Knowgget& k) {
  ++collectiveReceived_;
  kb_.putRemote(k);
}

void KalisNode::addModule(std::unique_ptr<Module> module) {
  manager_.addModule(std::move(module));
}

bool KalisNode::addModuleByName(
    const std::string& name, const std::map<std::string, std::string>& params) {
  if (manager_.find(name) != nullptr) return false;
  auto module = ModuleRegistry::global().create(name);
  if (!module) {
    KALIS_WARN("kalis", "unknown module '" << name << "'");
    return false;
  }
  module->configure(params);
  manager_.addModule(std::move(module));
  return true;
}

void KalisNode::useStandardLibrary() {
  for (const std::string& name : ModuleRegistry::global().names()) {
    if (manager_.find(name) == nullptr) addModuleByName(name);
  }
}

bool KalisNode::applyConfig(const KalisConfig& config) {
  bool ok = true;
  for (const ModuleSpec& spec : config.modules) {
    if (Module* existing = manager_.find(spec.name)) {
      existing->configure(spec.params);
    } else {
      ok &= addModuleByName(spec.name, spec.params);
    }
  }
  for (const StaticKnowgget& k : config.knowggets) {
    kb_.put(k.label, k.value, k.entity);
  }
  return ok;
}

void KalisNode::emulateTraditionalIds() {
  traditional_ = true;
  manager_.setAllAlwaysActive(true);
  kb_.setWritesEnabled(false);
}

void KalisNode::attach(sim::World& world, NodeId nodeId,
                       std::initializer_list<net::Medium> media) {
  for (net::Medium medium : media) {
    world.enableRadio(nodeId, medium);
    world.addSniffer(nodeId, medium,
                     [this](const net::CapturedPacket& pkt,
                            const net::Dissection& dis) { feed(pkt, dis); });
  }
}

void KalisNode::feed(const net::CapturedPacket& pkt) {
  manager_.onPacket(pkt, pkt.meta.timestamp ? pkt.meta.timestamp : sim_.now());
}

void KalisNode::feed(const net::CapturedPacket& pkt, const net::Dissection& dis) {
  manager_.onPacket(pkt, dis,
                    pkt.meta.timestamp ? pkt.meta.timestamp : sim_.now());
}

void KalisNode::replayFeed(const net::CapturedPacket& pkt) {
  if (pkt.meta.timestamp > sim_.now()) sim_.runUntil(pkt.meta.timestamp);
  feed(pkt);
}

void KalisNode::replayFeed(const net::CapturedPacket& pkt,
                           const net::Dissection& dis) {
  if (pkt.meta.timestamp > sim_.now()) sim_.runUntil(pkt.meta.timestamp);
  feed(pkt, dis);
}

std::size_t KalisNode::consume(net::PacketSource& source) {
  std::size_t n = 0;
  while (auto pkt = source.next()) {
    replayFeed(*pkt);
    ++n;
  }
  return n;
}

void KalisNode::start() {
  if (started_) return;
  started_ = true;
  manager_.start(sim_.now());
  tickLoop();
}

void KalisNode::tickLoop() {
  std::weak_ptr<bool> alive = alive_;
  sim_.schedule(options_.tickInterval, [this, alive] {
    if (alive.expired()) return;
    manager_.tick(sim_.now());
    tickLoop();
  });
}

void KalisNode::addPeer(KalisNode* peer) {
  for (KalisNode* existing : peers_) {
    if (existing == peer) return;
  }
  // Hook the peer channel into the CollectiveSink seam on first discovery;
  // a node with no peers never registers (and never pays the fan-out).
  if (peers_.empty()) kb_.addCollectiveSink(&peerChannel_);
  peers_.push_back(peer);
}

void KalisNode::discoverPeers(KalisNode& a, KalisNode& b) {
  a.addPeer(&b);
  b.addPeer(&a);
}

std::size_t KalisNode::memoryBytes() const {
  return kb_.memoryBytes() + dataStore_.memoryBytes() +
         manager_.moduleMemoryBytes();
}

}  // namespace kalis::ids
