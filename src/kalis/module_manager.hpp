// The Module Manager (paper §IV-B4): coordinates all modules, activating and
// deactivating them as the Knowledge Base changes, routing packet events to
// active modules, and collecting alerts.
//
// Dynamic configuration works through the KB's publish/subscribe mechanism:
// for every module, the manager subscribes to the module's watchedLabels();
// when a matching knowgget changes, it re-evaluates required() and flips the
// module's activation state if the answer changed.
//
// The "traditional IDS" baseline (§VI-B) is this same manager with
// setAllAlwaysActive(true): every module runs at all times and the KB is
// frozen, exactly the paper's emulation ("running our system without
// Knowledge Base, and with all the modules active at all times").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kalis/module.hpp"
#include "util/metrics.hpp"

namespace kalis::ids {

class ModuleManager {
 public:
  ModuleManager(KnowledgeBase& kb, DataStore& dataStore);
  ~ModuleManager();

  ModuleManager(const ModuleManager&) = delete;
  ModuleManager& operator=(const ModuleManager&) = delete;

  /// Adds a module to the library. Before start(), activation is deferred;
  /// afterwards the module is evaluated immediately.
  void addModule(std::unique_ptr<Module> module);

  /// Baseline emulation: all modules permanently active, required() ignored.
  void setAllAlwaysActive(bool on) { allAlwaysActive_ = on; }

  /// Evaluates initial activations and installs KB subscriptions.
  void start(SimTime now);
  bool started() const { return started_; }

  /// Routes a captured packet to every active module and charges the
  /// CPU-proxy work units. The primary overload consumes a Dissection
  /// produced upstream (capture path, pipeline batch path) so each frame is
  /// dissected exactly once end-to-end; the convenience overload dissects
  /// internally for direct feeds and tests.
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                SimTime now);
  void onPacket(const net::CapturedPacket& pkt, SimTime now);

  /// Periodic tick forwarded to active modules.
  void tick(SimTime now);

  // --- alerts ---------------------------------------------------------------
  const std::vector<Alert>& alerts() const { return alerts_; }
  void clearAlerts() { alerts_.clear(); }
  /// Optional extra consumer (countermeasure engine, SIEM export, tests).
  void setAlertSink(std::function<void(const Alert&)> sink) {
    alertSink_ = std::move(sink);
  }

  // --- introspection ----------------------------------------------------------
  std::vector<std::string> activeModuleNames() const;
  std::vector<std::string> allModuleNames() const;
  bool isActive(const std::string& name) const;
  Module* find(const std::string& name);
  std::size_t moduleCount() const { return entries_.size(); }
  std::size_t activeCount() const;

  // --- resource accounting (CPU / RAM proxies) --------------------------------
  std::uint64_t totalWorkUnits() const { return totalWorkUnits_; }
  std::uint64_t packetsProcessed() const { return packetsProcessed_; }
  /// Packets whose dissection verdict was kMalformed (truncated/corrupted
  /// frames — e.g. chaos bit flips). They are still routed to modules, which
  /// must tolerate partial dissections; this tally sizes the corruption the
  /// node absorbed.
  std::uint64_t malformedPackets() const { return malformedPackets_; }
  /// Bytes of live module state across active modules.
  std::size_t moduleMemoryBytes() const;
  /// Cumulative integral of (active modules) over packets — a load measure.
  std::uint64_t moduleActivationsSeen() const { return moduleActivations_; }

  // --- observability (kalis::obs; zero-cost under KALIS_METRICS=OFF) ----------

  /// Per-module instrumentation. The latency histogram is wall-time sampled
  /// (1 packet in kLatencySampleEvery) so the steady_clock reads stay off
  /// the common path.
  struct ModuleStats {
    obs::Counter packets;          ///< packets routed to this module
    obs::Counter workUnits;        ///< CPU-proxy units charged
    obs::Counter alerts;           ///< alerts raised by this module
    obs::Counter activationFlips;  ///< KB-driven (de)activations
    obs::Histogram onPacketNs;     ///< sampled onPacket wall time, ns
  };

  /// Every kLatencySampleEvery-th packet gets wall-timed per module.
  static constexpr std::uint64_t kLatencySampleEvery = 16;

  /// Stats for one module by name; nullptr if unknown.
  const ModuleStats* statsFor(const std::string& name) const;

  /// Appends all manager + per-module metrics under `prefix` ("kalis").
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  struct Entry {
    std::unique_ptr<Module> module;
    bool active = false;
    std::vector<int> subscriptionIds;
    ModuleStats stats;
  };

  void evaluate(Entry& entry, SimTime now);
  ModuleContext makeContext(SimTime now);

  KnowledgeBase& kb_;
  DataStore& dataStore_;
  std::vector<Entry> entries_;
  std::vector<Alert> alerts_;
  std::function<void(const Alert&)> alertSink_;
  bool allAlwaysActive_ = false;
  bool started_ = false;
  bool evaluating_ = false;  ///< guards re-entrant KB-triggered evaluation
  std::uint64_t totalWorkUnits_ = 0;
  std::uint64_t packetsProcessed_ = 0;
  std::uint64_t malformedPackets_ = 0;
  std::uint64_t moduleActivations_ = 0;
  SimTime lastEventTime_ = 0;
  obs::Counter ticks_;
  obs::Counter alertsRaised_;
  obs::Gauge activeModules_;
  /// Module currently dispatched to; alerts raised through the context are
  /// attributed to it. Entry addresses are stable during dispatch (modules
  /// are added before traffic flows; KB flips never grow the vector).
  ModuleStats* currentStats_ = nullptr;
};

}  // namespace kalis::ids
