#include "kalis/data_store.hpp"

namespace kalis::ids {

DataStore::DataStore() : DataStore(Config{}) {}

DataStore::DataStore(Config config)
    : config_(std::move(config)), window_(config_.windowCapacity) {}

DataStore::~DataStore() {
  if (config_.logToDisk && dirty_) flush();
}

void DataStore::onPacket(const net::CapturedPacket& pkt) {
  owner_.check("DataStore::onPacket");
  if (window_.push(pkt)) windowEvictions_.inc();
  ++totalPackets_;
  if (config_.logToDisk) {
    logWriter_.append(pkt);
    loggedPackets_.inc();
    dirty_ = true;
  }
}

bool DataStore::flush() {
  owner_.check("DataStore::flush");
  if (!config_.logToDisk || config_.logPath.empty()) return false;
  const bool ok = logWriter_.writeFile(config_.logPath);
  if (ok) dirty_ = false;
  return ok;
}

std::optional<trace::Trace> DataStore::loadLog(const std::string& path) {
  auto result = trace::readTraceFile(path);
  if (!result) return std::nullopt;
  return std::move(result->packets);
}

std::size_t DataStore::memoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& pkt : window_) {
    bytes += pkt.raw.size() + sizeof(net::CapturedPacket);
  }
  return bytes;
}

void DataStore::collectMetrics(obs::Registry& reg,
                               const std::string& prefix) const {
  reg.counter(prefix + ".packets", totalPackets_);
  reg.counter(prefix + ".window_evictions", windowEvictions_);
  reg.counter(prefix + ".logged_packets", loggedPackets_);
  reg.gauge(prefix + ".window_size", static_cast<double>(window_.size()),
            static_cast<double>(window_.size()));
  reg.gauge(prefix + ".memory_bytes", static_cast<double>(memoryBytes()),
            static_cast<double>(memoryBytes()));
}

}  // namespace kalis::ids
