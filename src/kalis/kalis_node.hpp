// KalisNode: one deployed Kalis IDS box — the composition of the
// architecture in Fig. 4: Communication System (sniffer attachments or
// direct feed), Data Store, Knowledge Base with collective-knowledge
// management, Module Manager with the module library, and the alert/
// countermeasure fan-out.
//
// The same class also emulates the evaluation's "traditional IDS" baseline
// (emulateTraditionalIds(): all modules always active, Knowledge Base
// frozen), guaranteeing the paper's "total fairness with respect to the
// detection techniques".
//
// Shard-confinement contract (DESIGN.md §7): a KalisNode and everything it
// owns (Knowledge Base, Data Store, Module Manager, modules) belong to
// exactly one thread for their whole lifetime. kalis::pipeline honors this
// by constructing each shard's node on its worker thread; debug builds
// enforce it with thread-ownership checks in KnowledgeBase and DataStore.
// Collective-knowledge peers must live on the same thread and simulator.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kalis/config.hpp"
#include "kalis/data_store.hpp"
#include "kalis/knowledge.hpp"
#include "kalis/module_manager.hpp"
#include "kalis/module_registry.hpp"
#include "net/packet_source.hpp"
#include "sim/world.hpp"

namespace kalis::ids {

class KalisNode {
 public:
  struct Options {
    std::string id = "K1";
    DataStore::Config dataStore{};
    Duration tickInterval = seconds(1);
    /// Latency of the encrypted one-way peer channels used for collective
    /// knowledge synchronization.
    Duration peerSyncLatency = milliseconds(10);
  };

  explicit KalisNode(sim::Simulator& sim);  ///< default options
  KalisNode(sim::Simulator& sim, Options options);
  ~KalisNode();

  KalisNode(const KalisNode&) = delete;
  KalisNode& operator=(const KalisNode&) = delete;

  const std::string& id() const { return options_.id; }
  KnowledgeBase& kb() { return kb_; }
  const KnowledgeBase& kb() const { return kb_; }
  ModuleManager& modules() { return manager_; }
  const ModuleManager& modules() const { return manager_; }
  DataStore& dataStore() { return dataStore_; }
  const DataStore& dataStore() const { return dataStore_; }
  sim::Simulator& sim() { return sim_; }
  const sim::Simulator& sim() const { return sim_; }

  // --- module library ---------------------------------------------------------
  void addModule(std::unique_ptr<Module> module);
  /// Instantiates from the global registry; returns false if unknown or
  /// already loaded.
  bool addModuleByName(const std::string& name,
                       const std::map<std::string, std::string>& params = {});
  /// Loads every module in the registry (the full standard library).
  void useStandardLibrary();
  /// Applies a parsed configuration file: loads/parameterizes the listed
  /// modules and inserts the a-priori knowggets.
  bool applyConfig(const KalisConfig& config);

  // --- baseline emulation ------------------------------------------------------
  /// Traditional IDS: every module permanently active, no Knowledge Base.
  void emulateTraditionalIds();

  // --- wiring ------------------------------------------------------------------
  /// Attaches promiscuous sniffers on the given media of a World node (the
  /// physical IDS box position matters: it hears what its radio hears).
  void attach(sim::World& world, NodeId nodeId,
              std::initializer_list<net::Medium> media);
  /// Direct packet feed (trace replay, tests). The overload without a
  /// Dissection dissects internally; the one taking a shared Dissection is
  /// the zero-copy path (dis must alias pkt.raw). Superseded as an
  /// ingestion entry point by consume() — kept for per-packet callers
  /// (sniffer attachments, pipeline shard engines, tests).
  void feed(const net::CapturedPacket& pkt);
  void feed(const net::CapturedPacket& pkt, const net::Dissection& dis);
  /// Replay feed: first advances this node's simulator clock to the packet's
  /// capture timestamp — firing pending ticks exactly as live operation
  /// would — then feeds it. This is the per-packet step of the synchronous
  /// replay path and of kalis::pipeline shard engines; only meaningful when
  /// this node (and its peers, if any) are the sole users of the simulator.
  /// Superseded as an ingestion entry point by consume().
  void replayFeed(const net::CapturedPacket& pkt);
  void replayFeed(const net::CapturedPacket& pkt, const net::Dissection& dis);
  /// Unified ingestion seam: drains a PacketSource (simulator capture,
  /// KTRC trace, pcap file — anything implementing the pull interface)
  /// through the replay-feed path, packet by packet, in capture order.
  /// Returns the number of packets consumed.
  std::size_t consume(net::PacketSource& source);

  /// Starts the module manager and the periodic tick. Call once.
  void start();
  bool started() const { return started_; }

  // --- collective knowledge ------------------------------------------------------
  /// Models the outcome of the discovery-through-advertisement beaconing:
  /// both nodes add each other to their peer lists and begin synchronizing
  /// collective knowggets over one-way encrypted channels.
  static void discoverPeers(KalisNode& a, KalisNode& b);
  std::size_t peerCount() const { return peers_.size(); }
  std::uint64_t collectiveSent() const { return collectiveSent_; }
  std::uint64_t collectiveReceived() const { return collectiveReceived_; }

  // --- outputs -----------------------------------------------------------------
  const std::vector<Alert>& alerts() const { return manager_.alerts(); }
  void setAlertSink(std::function<void(const Alert&)> sink) {
    manager_.setAlertSink(std::move(sink));
  }

  /// RAM proxy: live bytes across KB, Data Store window and module state.
  std::size_t memoryBytes() const;

 private:
  /// CollectiveSink feeding the in-simulator one-way encrypted peer
  /// channels; registered with the KB once the first peer is discovered.
  struct PeerChannel final : CollectiveSink {
    explicit PeerChannel(KalisNode& n) : node(n) {}
    void onCollective(const Knowgget& k) override { node.sendToPeers(k); }
    KalisNode& node;
  };

  void tickLoop();
  void addPeer(KalisNode* peer);
  void sendToPeers(const Knowgget& k);
  void receiveCollective(const Knowgget& k);

  sim::Simulator& sim_;
  Options options_;
  KnowledgeBase kb_;
  DataStore dataStore_;
  ModuleManager manager_;
  PeerChannel peerChannel_{*this};
  std::vector<KalisNode*> peers_;
  bool started_ = false;
  bool traditional_ = false;
  std::uint64_t collectiveSent_ = 0;
  std::uint64_t collectiveReceived_ = 0;
  std::shared_ptr<bool> alive_;  ///< guards scheduled callbacks
};

}  // namespace kalis::ids
