// Entity-keyed state containers for modules on the per-packet hot path.
//
// Pre-zero-copy, module state was keyed by entity *strings* ("10.0.0.2",
// "02:4b:41:00:00:07"), so every captured packet paid one or more
// std::string constructions just to index a map. EntityKeyedMap keys by
// net::EntityRef instead — a fixed-size, trivially-copyable value hashed in
// a few instructions — so lookups and insertions on the packet path are
// allocation-free. The entity's string form is computed once, when the
// entry is first created, and cached next to the value for alert text.
//
// Ordered iteration (forEachOrdered) walks entries in LABEL ORDER — the
// iteration order of the std::map<std::string, V> these modules used
// before — so alert emission order, and with it the golden SIEM streams,
// stays byte-identical. Sorting happens lazily at iteration time (tick
// cadence), never per packet.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/entity_ref.hpp"

namespace kalis::ids {

template <class V>
class EntityKeyedMap {
 public:
  struct Entry {
    net::EntityRef key;
    std::string label;  ///< key.toString(), cached at insertion
    V value;
  };

  /// Allocation-free on the hit path; on a miss, constructs V from `args`
  /// and caches the label (the only string built, once per new entity).
  template <class... Args>
  std::pair<Entry*, bool> tryEmplace(const net::EntityRef& key,
                                     Args&&... args) {
    auto [it, inserted] =
        map_.try_emplace(key, Entry{key, {}, V(std::forward<Args>(args)...)});
    if (inserted) {
      it->second.label = key.toString();
      dirty_ = true;
    }
    return {&it->second, inserted};
  }

  Entry* find(const net::EntityRef& key) {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  const Entry* find(const net::EntityRef& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Linear scan by cached label — for test/introspection APIs that still
  /// address entities by string; never used on the packet path.
  const Entry* findByLabel(const std::string& label) const {
    for (const auto& [k, e] : map_) {
      if (e.label == label) return &e;
    }
    return nullptr;
  }

  /// Visits every entry in ascending label order (the legacy
  /// string-map order; see the header comment).
  template <class Fn>
  void forEachOrdered(Fn&& fn) {
    ensureSorted();
    for (Entry* e : sorted_) fn(*e);
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() {
    map_.clear();
    sorted_.clear();
    dirty_ = false;
  }

  /// RAM-proxy accounting: per-entry overhead plus whatever the caller
  /// measures for V itself.
  std::size_t entryOverheadBytes() const {
    std::size_t bytes = 0;
    for (const auto& [k, e] : map_) bytes += sizeof(Entry) + e.label.size();
    return bytes;
  }

  template <class Fn>
  void forEachUnordered(Fn&& fn) const {
    for (const auto& [k, e] : map_) fn(e);
  }

 private:
  void ensureSorted() {
    if (!dirty_ && sorted_.size() == map_.size()) return;
    sorted_.clear();
    sorted_.reserve(map_.size());
    // Entry addresses are stable: unordered_map never relocates nodes.
    for (auto& [k, e] : map_) sorted_.push_back(&e);
    std::sort(sorted_.begin(), sorted_.end(),
              [](const Entry* a, const Entry* b) { return a->label < b->label; });
    dirty_ = false;
  }

  std::unordered_map<net::EntityRef, Entry> map_;
  std::vector<Entry*> sorted_;
  bool dirty_ = false;
};

/// Selects the entity with the highest count; ties break toward the
/// lexicographically smallest string form — exactly the "first strict
/// maximum over a string-sorted map" the pre-EntityRef code computed.
template <class Map>
net::EntityRef dominantEntity(const Map& counts) {
  net::EntityRef best;
  std::size_t bestCount = 0;
  std::string bestLabel;
  for (const auto& [src, n] : counts) {
    if (n < bestCount) continue;
    std::string label = src.toString();
    if (n > bestCount || bestLabel.empty() || label < bestLabel) {
      best = src;
      bestCount = n;
      bestLabel = std::move(label);
    }
  }
  return best;
}

/// Sorted string forms of a set/range of entities — the order a
/// std::set<std::string> would have yielded.
template <class Range>
std::vector<std::string> sortedLabels(const Range& entities) {
  std::vector<std::string> labels;
  for (const auto& e : entities) labels.push_back(e.toString());
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace kalis::ids
