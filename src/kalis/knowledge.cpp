#include "kalis/knowledge.hpp"

#include <algorithm>

namespace kalis::ids {

std::string encodeKey(std::string_view creator, std::string_view label,
                      std::string_view entity) {
  std::string key;
  key.reserve(creator.size() + label.size() + entity.size() + 2);
  key.append(creator);
  key.push_back('$');
  key.append(label);
  if (!entity.empty()) {
    key.push_back('@');
    key.append(entity);
  }
  return key;
}

std::optional<KeyParts> decodeKey(std::string_view key) {
  const std::size_t dollar = key.find('$');
  if (dollar == std::string_view::npos) return std::nullopt;
  KeyParts parts;
  parts.creator = std::string(key.substr(0, dollar));
  std::string_view rest = key.substr(dollar + 1);
  const std::size_t at = rest.rfind('@');
  if (at == std::string_view::npos) {
    parts.label = std::string(rest);
  } else {
    parts.label = std::string(rest.substr(0, at));
    parts.entity = std::string(rest.substr(at + 1));
  }
  return parts;
}

BaselineSegment::BaselineSegment(std::vector<Knowgget> entries) {
  entries_.reserve(entries.size());
  for (Knowgget& k : entries) {
    entries_.emplace_back(encodeKey(k.creator, k.label, k.entity),
                          std::move(k));
  }
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // Later duplicates win, mirroring repeated map insertion.
  for (std::size_t i = entries_.size(); i-- > 1;) {
    if (entries_[i].first == entries_[i - 1].first) {
      entries_[i - 1] = std::move(entries_[i]);
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

const Knowgget* BaselineSegment::find(const std::string& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
  if (it == entries_.end() || it->first != key) return nullptr;
  return &it->second;
}

std::size_t BaselineSegment::memoryBytes() const {
  std::size_t bytes = sizeof(BaselineSegment);
  for (const auto& [key, k] : entries_) {
    bytes += key.size() + k.label.size() + k.value.size() + k.creator.size() +
             k.entity.size() + sizeof(std::pair<std::string, Knowgget>);
  }
  return bytes;
}

KnowledgeBase::KnowledgeBase(std::string selfId) : selfId_(std::move(selfId)) {}

void KnowledgeBase::putEncoded(const std::string& label, std::string value,
                               const std::string& entity, bool collective) {
  owner_.check("KnowledgeBase::put");
  if (!writesEnabled_) return;
  const std::string key = encodeKey(selfId_, label, entity);
  auto it = store_.find(key);
  if (it != store_.end() && it->second.value == value) return;  // unchanged
  if (it == store_.end() && baseline_) {
    // Copy-on-write: re-asserting the baseline value costs no overlay entry.
    const Knowgget* base = baseline_->find(key);
    if (base != nullptr && base->value == value) return;
  }

  Knowgget k;
  k.label = label;
  k.value = std::move(value);
  k.creator = selfId_;
  k.entity = entity;
  k.collective = collective;
  k.updated = nowTs();
  store_[key] = k;
  publishes_.inc();
  notify(k);
  if (collective) {
    // Snapshot: a sink may (un)register sinks while handling the knowgget.
    const std::vector<CollectiveSink*> sinks = collectiveSinks_;
    for (CollectiveSink* sink : sinks) sink->onCollective(k);
  }
}

bool KnowledgeBase::putRemote(const Knowgget& k) {
  owner_.check("KnowledgeBase::putRemote");
  if (!writesEnabled_) {
    remoteRejected_.inc();
    return false;
  }
  if (k.creator == selfId_) {  // nobody may impersonate us
    remoteRejected_.inc();
    return false;
  }
  const std::string key = encodeKey(k.creator, k.label, k.entity);
  auto it = store_.find(key);
  if (it != store_.end()) {
    if (it->second.creator != k.creator) {  // one-way rule
      remoteRejected_.inc();
      return false;
    }
    if (it->second.value == k.value) return true;  // no change
  } else if (baseline_ != nullptr) {
    const Knowgget* base = baseline_->find(key);
    if (base != nullptr) {
      if (base->creator != k.creator) {  // one-way rule vs the baseline
        remoteRejected_.inc();
        return false;
      }
      // Matching the shared baseline costs no overlay entry (CoW).
      if (base->value == k.value) return true;
    }
  }
  Knowgget stored = k;
  stored.updated = nowTs();
  store_[key] = stored;
  remoteAccepted_.inc();
  notify(stored);
  return true;
}

bool KnowledgeBase::remove(const std::string& label, const std::string& entity) {
  owner_.check("KnowledgeBase::remove");
  return store_.erase(encodeKey(selfId_, label, entity)) > 0;
}

std::optional<std::string> KnowledgeBase::raw(const std::string& key) const {
  auto it = store_.find(key);
  if (it != store_.end()) return it->second.value;
  if (baseline_ != nullptr) {
    const Knowgget* base = baseline_->find(key);
    if (base != nullptr) return base->value;
  }
  return std::nullopt;
}

std::vector<Knowgget> KnowledgeBase::byLabel(const std::string& label) const {
  std::vector<Knowgget> out;
  forEachEntry([&](const std::string&, const Knowgget& k) {
    if (k.label == label) out.push_back(k);
  });
  return out;
}

std::vector<Knowgget> KnowledgeBase::byEntity(const std::string& entity) const {
  std::vector<Knowgget> out;
  forEachEntry([&](const std::string&, const Knowgget& k) {
    if (k.entity == entity) out.push_back(k);
  });
  return out;
}

std::vector<Knowgget> KnowledgeBase::byLabelPrefix(
    const std::string& labelPrefix) const {
  std::vector<Knowgget> out;
  forEachEntry([&](const std::string&, const Knowgget& k) {
    if (k.label == labelPrefix ||
        (k.label.size() > labelPrefix.size() &&
         startsWith(k.label, labelPrefix) &&
         k.label[labelPrefix.size()] == '.')) {
      out.push_back(k);
    }
  });
  return out;
}

std::vector<Knowgget> KnowledgeBase::byCreator(const std::string& creator) const {
  std::vector<Knowgget> out;
  const std::string prefix = creator + "$";
  forEachEntry([&](const std::string& key, const Knowgget& k) {
    if (startsWith(key, prefix)) out.push_back(k);
  });
  return out;
}

std::vector<Knowgget> KnowledgeBase::all() const {
  std::vector<Knowgget> out;
  out.reserve(size());
  forEachEntry(
      [&](const std::string&, const Knowgget& k) { out.push_back(k); });
  return out;
}

std::size_t KnowledgeBase::size() const {
  if (baseline_ == nullptr) return store_.size();
  std::size_t shadowed = 0;
  for (const auto& [key, k] : store_) {
    if (baseline_->find(key) != nullptr) ++shadowed;
  }
  return store_.size() + baseline_->size() - shadowed;
}

std::size_t KnowledgeBase::memoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [key, k] : store_) {
    bytes += key.size() + k.label.size() + k.value.size() + k.creator.size() +
             k.entity.size() + sizeof(Knowgget);
  }
  return bytes;
}

int KnowledgeBase::subscribe(const std::string& labelPattern, Subscription fn) {
  owner_.check("KnowledgeBase::subscribe");
  const int id = nextSubId_++;
  subs_.push_back(Sub{id, labelPattern, std::move(fn)});
  return id;
}

void KnowledgeBase::addCollectiveSink(CollectiveSink* sink) {
  owner_.check("KnowledgeBase::addCollectiveSink");
  if (sink == nullptr) return;
  for (CollectiveSink* existing : collectiveSinks_) {
    if (existing == sink) return;
  }
  collectiveSinks_.push_back(sink);
}

void KnowledgeBase::removeCollectiveSink(CollectiveSink* sink) {
  owner_.check("KnowledgeBase::removeCollectiveSink");
  collectiveSinks_.erase(
      std::remove(collectiveSinks_.begin(), collectiveSinks_.end(), sink),
      collectiveSinks_.end());
}

void KnowledgeBase::unsubscribe(int id) {
  owner_.check("KnowledgeBase::unsubscribe");
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [id](const Sub& s) { return s.id == id; }),
              subs_.end());
}

void KnowledgeBase::notify(const Knowgget& k) {
  // Iterate over a snapshot: callbacks may subscribe/unsubscribe.
  const std::vector<Sub> snapshot = subs_;
  for (const auto& sub : snapshot) {
    bool match;
    if (!sub.pattern.empty() && sub.pattern.back() == '*') {
      match = startsWith(k.label,
                         std::string_view(sub.pattern).substr(0, sub.pattern.size() - 1));
    } else {
      match = (k.label == sub.pattern);
    }
    if (match) {
      subscriptionFires_.inc();
      sub.fn(k);
    }
  }
}

void KnowledgeBase::collectMetrics(obs::Registry& reg,
                                   const std::string& prefix) const {
  reg.counter(prefix + ".publishes", publishes_);
  reg.counter(prefix + ".subscription_fires", subscriptionFires_);
  reg.counter(prefix + ".remote_accepted", remoteAccepted_);
  reg.counter(prefix + ".remote_rejected", remoteRejected_);
  reg.gauge(prefix + ".knowggets", static_cast<double>(size()),
            static_cast<double>(size()));
  reg.gauge(prefix + ".memory_bytes", static_cast<double>(memoryBytes()),
            static_cast<double>(memoryBytes()));
  reg.gauge(prefix + ".subscriptions", static_cast<double>(subs_.size()),
            static_cast<double>(subs_.size()));
}

}  // namespace kalis::ids
