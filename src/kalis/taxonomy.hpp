// The two IoT threat taxonomies of paper §III-B, as queryable data.
//
// Table I classifies attack *patterns* by (source, target) entity kind.
// Fig. 3 relates network/device *features* to attacks: possible (dot),
// impossible (cross), or possible-with-feature-dependent-technique (circle).
// The Fig. 3 instance here reconstructs every relationship the paper text
// states explicitly (Smurf/selective-forwarding impossible on single-hop,
// replication technique depends on mobility, sybil/sinkhole techniques
// depend on hop structure, crypto rules out data alteration, ...) and fills
// the remainder with the natural readings; tests cross-check it against the
// detection modules' required() predicates.
#pragma once

#include <string>
#include <vector>

#include "kalis/alert.hpp"
#include "kalis/knowledge.hpp"

namespace kalis::ids::taxonomy {

// --- Table I: attack patterns by target -------------------------------------

enum class EntityKind : std::uint8_t {
  kInternetService = 0,
  kHub,
  kSub,
  kRouter,
};
inline constexpr std::size_t kNumEntityKinds = 4;

const char* entityKindName(EntityKind k);

enum class PatternKind : std::uint8_t {
  kNotPossible = 0,   ///< the "-" cells: source cannot reach target
  kDenialOfService,   ///< classic DoS against Internet services
  kRemoteDot,         ///< Internet -> hub "Remote Denial of Thing"
  kControlDot,        ///< hub/router -> hub "Control Denial of Thing"
  kDot,               ///< Denial of Thing against a sub
  kDenialOfRouting,   ///< attacks targeting IoT routers
};

const char* patternKindName(PatternKind k);

/// Table I lookup: what attack pattern a `source` mounts against `target`.
PatternKind attackPattern(EntityKind source, EntityKind target);

// --- Fig. 3: features vs attacks ---------------------------------------------

enum class Feature : std::uint8_t {
  kSingleHop = 0,
  kMultiHop,
  kStaticNetwork,
  kMobileNetwork,
  kCryptoDeployed,
  kTcpTraffic,
  kIcmpTraffic,
  kRoutingProtocol,   ///< CTP / RPL / ZigBee routing present
  kWifiPresent,
  kWpanPresent,
};
inline constexpr std::size_t kNumFeatures = 10;

const char* featureName(Feature f);

enum class Applicability : std::uint8_t {
  kPossible,           ///< dot
  kImpossible,         ///< cross
  kTechniqueDependent, ///< circle: right technique depends on the feature
};

const char* applicabilityMark(Applicability a);  // "o", "x", "(o)"

/// Fig. 3 cell for (feature, attack).
Applicability featureAttack(Feature f, AttackType a);

/// Attacks a knowledge-driven IDS can *rule out* given that `f` holds.
std::vector<AttackType> ruledOutBy(Feature f);

/// Features currently established in a Knowledge Base (from its knowggets).
std::vector<Feature> featuresFrom(const KnowledgeBase& kb);

}  // namespace kalis::ids::taxonomy
