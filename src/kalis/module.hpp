// Module framework (paper §IV-B4): any network-feature-specific or
// attack-specific functionality is an independent module. Sensing modules
// discover knowledge; detection modules analyze traffic together with the
// available knowggets and raise alerts.
//
// Each module can, "given a particular instance of the Knowledge Base,
// determine whether its services are required" — that is `required()` —
// and declares which knowgget labels influence that decision in
// `watchedLabels()`, which the Module Manager turns into publish/subscribe
// registrations for dynamic (de)activation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kalis/alert.hpp"
#include "kalis/data_store.hpp"
#include "kalis/knowledge.hpp"
#include "net/packet.hpp"

namespace kalis::ids {

/// The services a module may use while processing events.
struct ModuleContext {
  KnowledgeBase& kb;
  DataStore& dataStore;
  SimTime now;
  std::function<void(Alert)> raiseAlert;
};

class Module {
 public:
  virtual ~Module() = default;

  virtual std::string name() const = 0;
  virtual bool isDetection() const = 0;

  /// Knowledge-driven activation predicate. The Module Manager activates the
  /// module exactly when this returns true for the current Knowledge Base.
  virtual bool required(const KnowledgeBase& kb) const {
    (void)kb;
    return true;
  }

  /// Knowgget label patterns (exact, or prefix ending in '*') whose changes
  /// can flip required(); the manager subscribes to them.
  virtual std::vector<std::string> watchedLabels() const { return {}; }

  /// Applies "name(key=value, ...)" parameters from the configuration file.
  /// Unknown keys are ignored (forward compatibility).
  virtual void configure(const std::map<std::string, std::string>& params) {
    (void)params;
  }

  virtual void onActivate(ModuleContext& ctx) { (void)ctx; }
  virtual void onDeactivate(ModuleContext& ctx) { (void)ctx; }

  /// Called for every captured packet while active. `dis` is the shared
  /// dissection, computed once per packet by the manager.
  virtual void onPacket(const net::CapturedPacket& pkt,
                        const net::Dissection& dis, ModuleContext& ctx) {
    (void)pkt;
    (void)dis;
    (void)ctx;
  }

  /// Periodic housekeeping (windows, threshold evaluation). Cadence is the
  /// owning node's tick interval (default 1 s).
  virtual void onTick(ModuleContext& ctx) { (void)ctx; }

  // --- resource-accounting proxies (see DESIGN.md §1) ------------------------

  /// Abstract CPU cost charged per packet processed while active.
  virtual std::uint32_t workUnitsPerPacket() const { return 1; }
  /// Live state footprint in bytes.
  virtual std::size_t memoryBytes() const { return 0; }
};

class SensingModule : public Module {
 public:
  bool isDetection() const override { return false; }
};

class DetectionModule : public Module {
 public:
  bool isDetection() const override { return true; }
  /// The attack this module is specialized on.
  virtual AttackType attack() const = 0;

 protected:
  /// Per-victim alert rate limiting: returns true at most once per
  /// `cooldown` for each key. Keeps modules from re-alerting every packet
  /// of a sustained attack.
  bool shouldAlert(const std::string& key, SimTime now, Duration cooldown) {
    auto it = lastAlert_.find(key);
    if (it != lastAlert_.end() && now < it->second + cooldown) return false;
    lastAlert_[key] = now;
    return true;
  }

  std::size_t alertStateBytes() const {
    std::size_t bytes = 0;
    for (const auto& [k, v] : lastAlert_) bytes += k.size() + sizeof(v);
    return bytes;
  }

  /// Clears rate-limit state (on deactivation).
  void resetAlertState() { lastAlert_.clear(); }

 private:
  std::map<std::string, SimTime> lastAlert_;
};

}  // namespace kalis::ids
