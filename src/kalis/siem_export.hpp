// SIEM integration (paper §I: Kalis "can act as data source for multisource
// security information management (SIEM) systems").
//
// Serializes alerts and knowgget changes into JSON-lines events that a SIEM
// collector can ingest, and can stream them to a sink (file, socket bridge,
// test buffer). The format is self-describing and versioned:
//
//   {"v":1,"kind":"alert","ts":12.5,"attack":"ICMPFlood","module":"...",
//    "victim":"10.0.0.2","suspects":["02:4b:.."],"confidence":1.0,
//    "detail":"..."}
//   {"v":1,"kind":"knowgget","ts":3.0,"key":"K1$Multihop","value":"true",
//    "collective":false}
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kalis/alert.hpp"
#include "kalis/knowledge.hpp"

namespace kalis::ids {

/// Escapes a string for inclusion in a JSON string literal.
std::string jsonEscape(std::string_view s);

/// One alert as a JSON-lines record (no trailing newline).
std::string toSiemJson(const Alert& alert);

/// One knowgget change as a JSON-lines record.
std::string toSiemJson(const Knowgget& knowgget);

/// Streams Kalis events to a line sink. Attach to a node with:
///   exporter.attachTo(node);   // subscribes to alerts and KB changes
class SiemExporter {
 public:
  using LineSink = std::function<void(const std::string& line)>;

  explicit SiemExporter(LineSink sink) : sink_(std::move(sink)) {}

  void exportAlert(const Alert& alert) {
    sink_(toSiemJson(alert));
    ++alertsExported_;
  }
  void exportKnowgget(const Knowgget& knowgget) {
    sink_(toSiemJson(knowgget));
    ++knowggetsExported_;
  }

  /// Subscribes to every knowgget label; call before node.start(). Alert
  /// export must be wired through the node's alert sink by the caller (the
  /// node has a single sink; compose if needed).
  void watchKnowledge(KnowledgeBase& kb) {
    kb.subscribe("*", [this](const Knowgget& k) { exportKnowgget(k); });
  }

  std::uint64_t alertsExported() const { return alertsExported_; }
  std::uint64_t knowggetsExported() const { return knowggetsExported_; }

 private:
  LineSink sink_;
  std::uint64_t alertsExported_ = 0;
  std::uint64_t knowggetsExported_ = 0;
};

}  // namespace kalis::ids
