// The Data Store (paper §IV-B2): listens for new-packet events, keeps a
// sliding window of the most recent packets in memory, optionally logs all
// traffic to disk in the KTRC format, and can replay logs transparently to
// the detection modules.
//
// Shard-confinement contract (DESIGN.md §7): a DataStore instance — window,
// disk log and counters — is owned by exactly one thread for its lifetime.
// It is deliberately lock-free; multi-worker deployments give each pipeline
// shard its own DataStore instead of sharing one behind a global lock.
// Debug builds bind an ownership checker on the first mutation and abort on
// access from any other thread. Reads (window(), memoryBytes()) follow the
// same confinement; there is no synchronization to make them safe
// elsewhere. Unlike the KnowledgeBase — whose collective knowggets cross
// shards as copies through the pipeline's KnowledgeExchange rings
// (DESIGN.md §8) — DataStore contents never leave the owning shard.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "trace/trace_file.hpp"
#include "util/metrics.hpp"
#include "util/sliding_window.hpp"
#include "util/thread_check.hpp"

namespace kalis::ids {

class DataStore {
 public:
  struct Config {
    std::size_t windowCapacity = 4096;  ///< packets kept in memory
    bool logToDisk = false;
    std::string logPath;                ///< required when logToDisk
  };

  DataStore();  ///< default configuration
  explicit DataStore(Config config);
  ~DataStore();

  DataStore(const DataStore&) = delete;
  DataStore& operator=(const DataStore&) = delete;

  /// Appends a captured packet to the window (and the disk log if enabled).
  void onPacket(const net::CapturedPacket& pkt);

  const RingWindow<net::CapturedPacket>& window() const { return window_; }
  std::uint64_t totalPackets() const { return totalPackets_; }

  /// Flushes the disk log buffer. Returns false on I/O failure.
  bool flush();

  /// Loads a previously written log for offline analysis / replay.
  static std::optional<trace::Trace> loadLog(const std::string& path);

  /// Live memory footprint (window contents), for the RAM proxy.
  std::size_t memoryBytes() const;

  // --- observability (kalis::obs; zero-cost under KALIS_METRICS=OFF) -----------
  /// Packets dropped off the back of the in-memory window.
  const obs::Counter& windowEvictions() const { return windowEvictions_; }
  /// Packets appended to the on-disk KTRC log.
  const obs::Counter& loggedPackets() const { return loggedPackets_; }

  /// Appends Data Store metrics under `prefix` (e.g. "kalis.data_store").
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const;

  /// Releases debug-build thread ownership for an explicit single-ended
  /// handoff (see util/thread_check.hpp). Never call while another thread
  /// may still touch this store.
  void rebindOwnerThread() { owner_.rebind(); }

 private:
  util::ThreadOwnershipChecker owner_;
  Config config_;
  RingWindow<net::CapturedPacket> window_;
  trace::TraceWriter logWriter_;
  std::uint64_t totalPackets_ = 0;
  bool dirty_ = false;
  obs::Counter windowEvictions_;
  obs::Counter loggedPackets_;
};

}  // namespace kalis::ids
