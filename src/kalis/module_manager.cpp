#include "kalis/module_manager.hpp"

#include "util/log.hpp"

namespace kalis::ids {

ModuleManager::ModuleManager(KnowledgeBase& kb, DataStore& dataStore)
    : kb_(kb), dataStore_(dataStore) {}

ModuleManager::~ModuleManager() {
  for (auto& entry : entries_) {
    for (int id : entry.subscriptionIds) kb_.unsubscribe(id);
  }
}

ModuleContext ModuleManager::makeContext(SimTime now) {
  return ModuleContext{
      kb_, dataStore_, now, [this](Alert alert) {
        KALIS_INFO("manager", toString(alert));
        alertsRaised_.inc();
        if (currentStats_) currentStats_->alerts.inc();
        alerts_.push_back(alert);
        if (alertSink_) alertSink_(alerts_.back());
      }};
}

void ModuleManager::addModule(std::unique_ptr<Module> module) {
  entries_.push_back(Entry{std::move(module), false, {}, {}});
  if (started_) {
    Entry& entry = entries_.back();
    Module* raw = entry.module.get();
    for (const std::string& pattern : raw->watchedLabels()) {
      entry.subscriptionIds.push_back(kb_.subscribe(
          pattern, [this, raw](const Knowgget&) {
            for (auto& e : entries_) {
              if (e.module.get() == raw) evaluate(e, lastEventTime_);
            }
          }));
    }
    evaluate(entry, lastEventTime_);
  }
}

void ModuleManager::start(SimTime now) {
  started_ = true;
  lastEventTime_ = now;
  for (auto& entry : entries_) {
    Module* raw = entry.module.get();
    for (const std::string& pattern : raw->watchedLabels()) {
      entry.subscriptionIds.push_back(kb_.subscribe(
          pattern, [this, raw](const Knowgget&) {
            for (auto& e : entries_) {
              if (e.module.get() == raw) evaluate(e, lastEventTime_);
            }
          }));
    }
  }
  for (auto& entry : entries_) evaluate(entry, now);
}

void ModuleManager::evaluate(Entry& entry, SimTime now) {
  const bool wanted = allAlwaysActive_ || entry.module->required(kb_);
  if (wanted == entry.active) return;
  ModuleContext ctx = makeContext(now);
  entry.active = wanted;
  entry.stats.activationFlips.inc();
  ModuleStats* prev = currentStats_;
  currentStats_ = &entry.stats;
  if (wanted) {
    KALIS_DEBUG("manager", "activating " << entry.module->name());
    entry.module->onActivate(ctx);
  } else {
    KALIS_DEBUG("manager", "deactivating " << entry.module->name());
    entry.module->onDeactivate(ctx);
  }
  currentStats_ = prev;
  activeModules_.set(static_cast<double>(activeCount()));
}

void ModuleManager::onPacket(const net::CapturedPacket& pkt, SimTime now) {
  onPacket(pkt, net::dissect(pkt), now);
}

void ModuleManager::onPacket(const net::CapturedPacket& pkt,
                             const net::Dissection& dis, SimTime now) {
  lastEventTime_ = now;
  dataStore_.onPacket(pkt);
  ++packetsProcessed_;
  // Wall-time one packet in kLatencySampleEvery; two steady_clock reads per
  // module per packet would dominate the cheap modules otherwise.
  const bool sampleLatency =
      obs::kEnabled && (packetsProcessed_ % kLatencySampleEvery) == 0;
  if (dis.type == net::PacketType::kMalformed) ++malformedPackets_;
  ModuleContext ctx = makeContext(now);
  // Iterate by index: modules may trigger KB changes that activate/deactivate
  // other modules (vector growth is not possible here, state flips are).
  for (auto& entry : entries_) {
    if (!entry.active) continue;
    ++moduleActivations_;
    totalWorkUnits_ += entry.module->workUnitsPerPacket();
    entry.stats.packets.inc();
    entry.stats.workUnits.inc(entry.module->workUnitsPerPacket());
    currentStats_ = &entry.stats;
    if (sampleLatency) {
      const std::uint64_t t0 = obs::nowNs();
      entry.module->onPacket(pkt, dis, ctx);
      entry.stats.onPacketNs.record(obs::nowNs() - t0);
    } else {
      entry.module->onPacket(pkt, dis, ctx);
    }
    currentStats_ = nullptr;
  }
}

void ModuleManager::tick(SimTime now) {
  lastEventTime_ = now;
  ticks_.inc();
  ModuleContext ctx = makeContext(now);
  for (auto& entry : entries_) {
    if (!entry.active) continue;
    currentStats_ = &entry.stats;
    entry.module->onTick(ctx);
    currentStats_ = nullptr;
  }
}

std::vector<std::string> ModuleManager::activeModuleNames() const {
  std::vector<std::string> names;
  for (const auto& entry : entries_) {
    if (entry.active) names.push_back(entry.module->name());
  }
  return names;
}

std::vector<std::string> ModuleManager::allModuleNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) names.push_back(entry.module->name());
  return names;
}

bool ModuleManager::isActive(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.module->name() == name) return entry.active;
  }
  return false;
}

Module* ModuleManager::find(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry.module->name() == name) return entry.module.get();
  }
  return nullptr;
}

std::size_t ModuleManager::activeCount() const {
  std::size_t n = 0;
  for (const auto& entry : entries_) {
    if (entry.active) ++n;
  }
  return n;
}

std::size_t ModuleManager::moduleMemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& entry : entries_) {
    if (entry.active) bytes += entry.module->memoryBytes();
  }
  return bytes;
}

const ModuleManager::ModuleStats* ModuleManager::statsFor(
    const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.module->name() == name) return &entry.stats;
  }
  return nullptr;
}

void ModuleManager::collectMetrics(obs::Registry& reg,
                                   const std::string& prefix) const {
  reg.counter(prefix + ".packets_routed", packetsProcessed_);
  reg.counter(prefix + ".malformed_packets", malformedPackets_);
  reg.counter(prefix + ".work_units", totalWorkUnits_);
  reg.counter(prefix + ".module_activations_seen", moduleActivations_);
  reg.counter(prefix + ".ticks", ticks_);
  reg.counter(prefix + ".alerts_raised", alertsRaised_);
  reg.gauge(prefix + ".active_modules", activeModules_);
  reg.gauge(prefix + ".module_memory_bytes",
            static_cast<double>(moduleMemoryBytes()),
            static_cast<double>(moduleMemoryBytes()));
  for (const auto& entry : entries_) {
    const std::string base = prefix + ".module." + entry.module->name();
    reg.counter(base + ".packets", entry.stats.packets);
    reg.counter(base + ".work_units", entry.stats.workUnits);
    reg.counter(base + ".alerts", entry.stats.alerts);
    reg.counter(base + ".activation_flips", entry.stats.activationFlips);
    reg.gauge(base + ".active", entry.active ? 1.0 : 0.0,
              entry.active ? 1.0 : 0.0);
    reg.histogram(base + ".on_packet_ns", entry.stats.onPacketNs);
  }
}

}  // namespace kalis::ids
