#include "kalis/module_manager.hpp"

#include "util/log.hpp"

namespace kalis::ids {

ModuleManager::ModuleManager(KnowledgeBase& kb, DataStore& dataStore)
    : kb_(kb), dataStore_(dataStore) {}

ModuleManager::~ModuleManager() {
  for (auto& entry : entries_) {
    for (int id : entry.subscriptionIds) kb_.unsubscribe(id);
  }
}

ModuleContext ModuleManager::makeContext(SimTime now) {
  return ModuleContext{
      kb_, dataStore_, now, [this](Alert alert) {
        KALIS_INFO("manager", toString(alert));
        alerts_.push_back(alert);
        if (alertSink_) alertSink_(alerts_.back());
      }};
}

void ModuleManager::addModule(std::unique_ptr<Module> module) {
  entries_.push_back(Entry{std::move(module), false, {}});
  if (started_) {
    Entry& entry = entries_.back();
    Module* raw = entry.module.get();
    for (const std::string& pattern : raw->watchedLabels()) {
      entry.subscriptionIds.push_back(kb_.subscribe(
          pattern, [this, raw](const Knowgget&) {
            for (auto& e : entries_) {
              if (e.module.get() == raw) evaluate(e, lastEventTime_);
            }
          }));
    }
    evaluate(entry, lastEventTime_);
  }
}

void ModuleManager::start(SimTime now) {
  started_ = true;
  lastEventTime_ = now;
  for (auto& entry : entries_) {
    Module* raw = entry.module.get();
    for (const std::string& pattern : raw->watchedLabels()) {
      entry.subscriptionIds.push_back(kb_.subscribe(
          pattern, [this, raw](const Knowgget&) {
            for (auto& e : entries_) {
              if (e.module.get() == raw) evaluate(e, lastEventTime_);
            }
          }));
    }
  }
  for (auto& entry : entries_) evaluate(entry, now);
}

void ModuleManager::evaluate(Entry& entry, SimTime now) {
  const bool wanted = allAlwaysActive_ || entry.module->required(kb_);
  if (wanted == entry.active) return;
  ModuleContext ctx = makeContext(now);
  entry.active = wanted;
  if (wanted) {
    KALIS_DEBUG("manager", "activating " << entry.module->name());
    entry.module->onActivate(ctx);
  } else {
    KALIS_DEBUG("manager", "deactivating " << entry.module->name());
    entry.module->onDeactivate(ctx);
  }
}

void ModuleManager::onPacket(const net::CapturedPacket& pkt, SimTime now) {
  lastEventTime_ = now;
  dataStore_.onPacket(pkt);
  ++packetsProcessed_;
  const net::Dissection dis = net::dissect(pkt);
  ModuleContext ctx = makeContext(now);
  // Iterate by index: modules may trigger KB changes that activate/deactivate
  // other modules (vector growth is not possible here, state flips are).
  for (auto& entry : entries_) {
    if (!entry.active) continue;
    ++moduleActivations_;
    totalWorkUnits_ += entry.module->workUnitsPerPacket();
    entry.module->onPacket(pkt, dis, ctx);
  }
}

void ModuleManager::tick(SimTime now) {
  lastEventTime_ = now;
  ModuleContext ctx = makeContext(now);
  for (auto& entry : entries_) {
    if (entry.active) entry.module->onTick(ctx);
  }
}

std::vector<std::string> ModuleManager::activeModuleNames() const {
  std::vector<std::string> names;
  for (const auto& entry : entries_) {
    if (entry.active) names.push_back(entry.module->name());
  }
  return names;
}

std::vector<std::string> ModuleManager::allModuleNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) names.push_back(entry.module->name());
  return names;
}

bool ModuleManager::isActive(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.module->name() == name) return entry.active;
  }
  return false;
}

Module* ModuleManager::find(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry.module->name() == name) return entry.module.get();
  }
  return nullptr;
}

std::size_t ModuleManager::activeCount() const {
  std::size_t n = 0;
  for (const auto& entry : entries_) {
    if (entry.active) ++n;
  }
  return n;
}

std::size_t ModuleManager::moduleMemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& entry : entries_) {
    if (entry.active) bytes += entry.module->memoryBytes();
  }
  return bytes;
}

}  // namespace kalis::ids
