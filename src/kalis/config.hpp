// Parser for Kalis configuration files (paper Fig. 6/7).
//
//   <config>    ::= <modules> <knowggets>
//   <modules>   ::= "modules = {" <module-def> ("," <module-def>)* "}"
//   <module-def>::= <name> [ "(" key=value ("," key=value)* ")" ]
//   <knowggets> ::= "knowggets = {" key=value ("," key=value)* "}"
//
// Extensions kept deliberately small: '#' line comments, empty sections,
// and knowgget keys carrying an "@entity" suffix ("SignalStrength@SensorA").
// Both sections are optional and may appear in either order.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kalis::ids {

struct ModuleSpec {
  std::string name;
  std::map<std::string, std::string> params;
};

struct StaticKnowgget {
  std::string label;
  std::string entity;  ///< empty if none
  std::string value;
};

struct KalisConfig {
  std::vector<ModuleSpec> modules;
  std::vector<StaticKnowgget> knowggets;
};

struct ConfigParseResult {
  bool ok = false;
  KalisConfig config;
  std::string error;  ///< human-readable, includes line number
  int errorLine = 0;
};

ConfigParseResult parseConfig(std::string_view text);

/// Renders a config back to the Fig. 6 syntax (round-trip support).
std::string formatConfig(const KalisConfig& config);

}  // namespace kalis::ids
