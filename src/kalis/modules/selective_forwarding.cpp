#include "kalis/modules/selective_forwarding.hpp"

#include <sstream>

namespace kalis::ids {

namespace {
std::string rootFromKb(const KnowledgeBase& kb) {
  return kb.local(labels::kCtpRoot).value_or("");
}
}  // namespace

// --- SelectiveForwardingModule -------------------------------------------------

void SelectiveForwardingModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("lowThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) lowThresh_ = *v;
  }
  if (auto it = params.find("highThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) highThresh_ = *v;
  }
  if (auto it = params.find("minSamples"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSamples_ = static_cast<std::size_t>(*v);
    }
  }
}

void SelectiveForwardingModule::onPacket(const net::CapturedPacket& pkt,
                                         const net::Dissection& dis,
                                         ModuleContext& ctx) {
  watchdog_.observe(pkt, dis, rootFromKb(ctx.kb));
  watchdog_.expire(ctx.now);
}

void SelectiveForwardingModule::onTick(ModuleContext& ctx) {
  watchdog_.expire(ctx.now);
  for (const std::string& entity : watchdog_.observedForwarders(ctx.now)) {
    const std::size_t n = watchdog_.samples(entity, ctx.now);
    if (n < minSamples_) continue;
    const double ratio = watchdog_.dropRatio(entity, ctx.now);
    if (ratio < lowThresh_ || ratio >= highThresh_) continue;
    if (!shouldAlert(entity, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kSelectiveForwarding;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.suspectEntities.push_back(entity);
    alert.detail = "drop ratio " + formatDouble(ratio) + " over " +
                   std::to_string(n) + " forwarding opportunities";
    ctx.raiseAlert(std::move(alert));
  }
}

// --- BlackholeModule -----------------------------------------------------------

void BlackholeModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("highThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) highThresh_ = *v;
  }
  if (auto it = params.find("minSamples"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSamples_ = static_cast<std::size_t>(*v);
    }
  }
}

void BlackholeModule::onPacket(const net::CapturedPacket& pkt,
                               const net::Dissection& dis, ModuleContext& ctx) {
  watchdog_.observe(pkt, dis, rootFromKb(ctx.kb));
  watchdog_.expire(ctx.now);
}

void BlackholeModule::onTick(ModuleContext& ctx) {
  watchdog_.expire(ctx.now);
  for (const std::string& entity : watchdog_.observedForwarders(ctx.now)) {
    const std::size_t n = watchdog_.samples(entity, ctx.now);
    if (n < minSamples_) continue;
    const double ratio = watchdog_.dropRatio(entity, ctx.now);
    if (ratio < highThresh_) continue;

    // Share the dropped-traffic fingerprints with peer Kalis nodes: if one
    // of them sees this very traffic reappear somewhere else, the attack is
    // a wormhole, not a blackhole.
    const auto fps = watchdog_.droppedFingerprints(entity, ctx.now);
    std::ostringstream csv;
    for (std::size_t i = 0; i < fps.size() && i < 64; ++i) {
      if (i) csv << ",";
      csv << std::hex << fps[i];
    }
    ctx.kb.put(labels::kWormholeDrops, csv.str(), entity, /*collective=*/true);

    if (!shouldAlert(entity, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kBlackhole;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.suspectEntities.push_back(entity);
    alert.detail = "drop ratio " + formatDouble(ratio) + " over " +
                   std::to_string(n) + " forwarding opportunities";
    ctx.raiseAlert(std::move(alert));
  }
}

}  // namespace kalis::ids
