#include "kalis/modules/replication.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace kalis::ids {

namespace {
bool isWpanSender(const net::Dissection& dis) {
  return dis.wpan.has_value();
}
}  // namespace

// --- ReplicationStaticModule ----------------------------------------------------

void ReplicationStaticModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("clusterGapDb"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) clusterGapDb_ = *v;
  }
  if (auto it = params.find("minPerCluster"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minPerCluster_ = static_cast<std::size_t>(*v);
    }
  }
}

void ReplicationStaticModule::onPacket(const net::CapturedPacket& pkt,
                                       const net::Dissection& dis,
                                       ModuleContext& ctx) {
  (void)ctx;
  if (!isWpanSender(dis)) return;
  auto& queue = samples_[dis.linkSource()];
  queue.push_back(Sample{pkt.meta.timestamp, pkt.meta.rssiDbm});
  const SimTime cutoff =
      pkt.meta.timestamp > window_ ? pkt.meta.timestamp - window_ : 0;
  while (!queue.empty() && queue.front().time <= cutoff) queue.pop_front();
}

void ReplicationStaticModule::onTick(ModuleContext& ctx) {
  for (auto& [entity, queue] : samples_) {
    const SimTime cutoff = ctx.now > window_ ? ctx.now - window_ : 0;
    while (!queue.empty() && queue.front().time <= cutoff) queue.pop_front();
    if (queue.size() < 2 * minPerCluster_) continue;

    // Split the sorted RSSI values at the largest gap; two tight, populated,
    // well-separated clusters mean two radios under one identity.
    std::vector<double> values;
    values.reserve(queue.size());
    for (const Sample& s : queue) values.push_back(s.rssi);
    std::sort(values.begin(), values.end());
    std::size_t gapAt = 0;
    double gap = 0.0;
    for (std::size_t i = 1; i < values.size(); ++i) {
      const double g = values[i] - values[i - 1];
      if (g > gap) {
        gap = g;
        gapAt = i;
      }
    }
    if (gap < clusterGapDb_) continue;
    const std::size_t lowCount = gapAt;
    const std::size_t highCount = values.size() - gapAt;
    if (lowCount < minPerCluster_ || highCount < minPerCluster_) continue;
    const double lowSpread = values[gapAt - 1] - values.front();
    const double highSpread = values.back() - values[gapAt];
    if (lowSpread > clusterTightDb_ || highSpread > clusterTightDb_) continue;

    if (!shouldAlert(entity, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kReplication;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = entity;  // the cloned identity
    alert.suspectEntities.push_back(entity);
    alert.detail = "bimodal RSSI: clusters at " +
                   formatDouble(values.front()) + ".." +
                   formatDouble(values[gapAt - 1]) + " and " +
                   formatDouble(values[gapAt]) + ".." +
                   formatDouble(values.back()) + " dBm";
    ctx.raiseAlert(std::move(alert));
  }
}

std::size_t ReplicationStaticModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& [entity, queue] : samples_) {
    bytes += entity.size() + queue.size() * sizeof(Sample) + 32;
  }
  return bytes;
}

// --- ReplicationMobileModule ----------------------------------------------------

void ReplicationMobileModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("impossibleDeltaDb"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) impossibleDeltaDb_ = *v;
  }
  if (auto it = params.find("maxGapMs"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      maxGap_ = milliseconds(static_cast<std::uint64_t>(*v));
    }
  }
  if (auto it = params.find("minEvents"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minEvents_ = static_cast<std::size_t>(*v);
    }
  }
}

void ReplicationMobileModule::onPacket(const net::CapturedPacket& pkt,
                                       const net::Dissection& dis,
                                       ModuleContext& ctx) {
  (void)ctx;
  if (!isWpanSender(dis)) return;
  const std::string entity = dis.linkSource();
  LastSeen& last = lastSeen_[entity];
  if (last.valid && pkt.meta.timestamp >= last.time &&
      pkt.meta.timestamp - last.time <= maxGap_ &&
      std::fabs(pkt.meta.rssiDbm - last.rssi) >= impossibleDeltaDb_) {
    auto& queue = events_[entity];
    queue.push_back(pkt.meta.timestamp);
    const SimTime cutoff =
        pkt.meta.timestamp > window_ ? pkt.meta.timestamp - window_ : 0;
    while (!queue.empty() && queue.front() <= cutoff) queue.pop_front();
  }
  last.time = pkt.meta.timestamp;
  last.rssi = pkt.meta.rssiDbm;
  last.valid = true;
}

void ReplicationMobileModule::onTick(ModuleContext& ctx) {
  for (auto& [entity, queue] : events_) {
    const SimTime cutoff = ctx.now > window_ ? ctx.now - window_ : 0;
    while (!queue.empty() && queue.front() <= cutoff) queue.pop_front();
    if (queue.size() < minEvents_) continue;
    if (!shouldAlert(entity, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kReplication;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = entity;
    alert.suspectEntities.push_back(entity);
    alert.detail = std::to_string(queue.size()) +
                   " physically impossible moves for one identity";
    ctx.raiseAlert(std::move(alert));
  }
}

std::size_t ReplicationMobileModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& [entity, last] : lastSeen_) bytes += entity.size() + 32;
  for (const auto& [entity, queue] : events_) {
    bytes += entity.size() + queue.size() * sizeof(SimTime) + 32;
  }
  return bytes;
}

}  // namespace kalis::ids
