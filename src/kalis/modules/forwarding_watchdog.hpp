// Promiscuous forwarding watchdog (Marti et al.-style watchdog mechanism,
// paper refs [13], [29]): by overhearing both the packet handed to a relay
// and the relay's retransmission, an external observer can tell whether a
// node forwards faithfully, drops, or alters traffic.
//
// Works for both WSN/CTP frames (forwarding expected toward the collection
// root, THL increments per hop) and ZigBee NWK frames (forwarding expected
// while the NWK destination differs from the link receiver, radius
// decrements per hop).
//
// Embedded privately by SelectiveForwarding / Blackhole / DataAlteration;
// each keeps its own instance — modules are independent by design, and the
// duplicated state is precisely the overhead Kalis's knowledge-driven module
// selection avoids paying when a technique is not needed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace kalis::ids {

class ForwardingWatchdog {
 public:
  struct Config {
    Duration timeout = milliseconds(500);  ///< grace to retransmit
    Duration window = seconds(30);         ///< verdict history retained
    std::size_t maxPending = 4096;
  };

  ForwardingWatchdog() : config_(Config{}) {}
  explicit ForwardingWatchdog(Config config) : config_(config) {}

  /// Feeds one overheard packet. `ctpRoot` is the collection root's link
  /// entity (forwarding is not expected of it); empty if unknown.
  void observe(const net::CapturedPacket& pkt, const net::Dissection& dis,
               const std::string& ctpRoot);

  /// Times out pending forwards, turning them into drop verdicts.
  void expire(SimTime now);

  // --- per-entity verdict queries (over the trailing window) -----------------
  std::size_t samples(const std::string& entity, SimTime now);
  double dropRatio(const std::string& entity, SimTime now);
  /// Fingerprints of recently dropped packets (for wormhole correlation).
  std::vector<std::uint64_t> droppedFingerprints(const std::string& entity,
                                                 SimTime now);
  /// All entities with at least one verdict in the window.
  std::vector<std::string> observedForwarders(SimTime now);

  struct AlterationEvent {
    std::string entity;
    SimTime time;
    std::string originEntity;
    std::uint64_t originalHash;
    std::uint64_t alteredHash;
  };
  /// Alteration events detected since the last drain.
  std::vector<AlterationEvent> drainAlterations();

  std::size_t memoryBytes() const;

  /// Stable fingerprint of a forwarded unit (used on both sides of a
  /// wormhole to match dropped vs re-injected traffic).
  static std::uint64_t fingerprint(std::uint16_t src, std::uint8_t seq,
                                   BytesView payload);

 private:
  struct Pending {
    SimTime seen;
    std::string forwarder;   ///< entity expected to retransmit
    std::uint64_t payloadHash;
    std::uint64_t fp;
    std::string originEntity;
  };
  struct Verdict {
    SimTime time;
    bool dropped;
    std::uint64_t fp;
  };

  void resolve(const std::string& key, const std::string& bySender,
               std::uint64_t newPayloadHash, SimTime now);
  void addVerdict(const std::string& entity, Verdict v);
  void evict(std::deque<Verdict>& verdicts, SimTime now) const;

  Config config_;
  std::map<std::string, Pending> pending_;            ///< by unit key
  std::map<std::string, std::deque<Verdict>> verdicts_;  ///< by forwarder
  std::vector<AlterationEvent> alterations_;
};

}  // namespace kalis::ids
