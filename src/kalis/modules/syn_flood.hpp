// SYN flood detection module (the paper's "SYN flow" prototype module).
//
// Symptom: a burst of TCP SYNs at one victim from many sources that never
// complete the handshake. Benign clients ACK the SYN-ACK quickly, so the
// module tracks half-open ratios rather than raw SYN counts to stay quiet
// for chatty-but-honest devices.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "kalis/entity_map.hpp"
#include "kalis/module.hpp"

namespace kalis::ids {

class SynFloodModule final : public DetectionModule {
 public:
  std::string name() const override { return "SynFloodModule"; }
  AttackType attack() const override { return AttackType::kSynFlood; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>("Protocols.TCP").value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Protocols.TCP"};
  }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  struct SynRecord {
    SimTime time;
    net::EntityRef claimedSrc;
    net::EntityRef linkSrc;
    std::uint32_t isn;       ///< initial sequence number of the SYN
    bool completed = false;  ///< a matching handshake ACK was seen
  };
  struct VictimState {
    std::deque<SynRecord> syns;
  };

  void evict(VictimState& state, SimTime now);

  double rateThresh_ = 15.0;        ///< half-open SYNs/s
  std::size_t minSources_ = 5;
  double halfOpenRatio_ = 0.7;
  Duration window_ = seconds(5);
  Duration cooldown_ = seconds(10);

  EntityKeyedMap<VictimState> victims_;  ///< by victim net addr
};

}  // namespace kalis::ids
