#include "kalis/modules/forwarding_watchdog.hpp"

#include "util/checksum.hpp"

namespace kalis::ids {

namespace {

std::string ctpKey(std::uint16_t origin, std::uint8_t seqno) {
  return "C" + std::to_string(origin) + ":" + std::to_string(seqno);
}

std::string zigbeeKey(std::uint16_t src, std::uint8_t seq) {
  return "Z" + std::to_string(src) + ":" + std::to_string(seq);
}

}  // namespace

std::uint64_t ForwardingWatchdog::fingerprint(std::uint16_t src,
                                              std::uint8_t seq,
                                              BytesView payload) {
  Bytes material;
  ByteWriter w(material);
  w.u16be(src);
  w.u8(seq);
  w.raw(payload);
  return fnv1a64(BytesView(material));
}

void ForwardingWatchdog::observe(const net::CapturedPacket& pkt,
                                 const net::Dissection& dis,
                                 const std::string& ctpRoot) {
  const SimTime now = pkt.meta.timestamp;
  if (dis.ctpData && dis.wpan) {
    const net::CtpDataView& data = *dis.ctpData;
    const std::string key = ctpKey(data.origin.value, data.seqno);
    const std::string sender = dis.linkSource();
    const std::string receiver = dis.linkDest();

    // First: does this transmission resolve a pending expectation?
    resolve(key, sender, fnv1a64(BytesView(data.payload)), now);

    // Then: does it create a new expectation? The receiver must forward,
    // unless it is the collection root or a broadcast.
    if (!dis.wpan->dst.isBroadcast() && receiver != ctpRoot) {
      if (pending_.size() < config_.maxPending) {
        Pending p;
        p.seen = now;
        p.forwarder = receiver;
        p.payloadHash = fnv1a64(BytesView(data.payload));
        p.fp = fingerprint(data.origin.value, data.seqno, BytesView(data.payload));
        p.originEntity = net::toString(data.origin);
        pending_[key] = std::move(p);
      }
    }
    return;
  }

  if (dis.zigbee && dis.wpan) {
    const net::ZigbeeNwkFrameView& nwk = *dis.zigbee;
    const std::string key = zigbeeKey(nwk.src.value, nwk.seq);
    const std::string sender = dis.linkSource();
    const std::string receiver = dis.linkDest();
    const std::string nwkDst = net::toString(nwk.dst);

    resolve(key, sender, fnv1a64(BytesView(nwk.payload)), now);

    // Forwarding expected when the link receiver is not the NWK destination.
    if (!dis.wpan->dst.isBroadcast() && !nwk.dst.isBroadcast() &&
        receiver != nwkDst) {
      if (pending_.size() < config_.maxPending) {
        Pending p;
        p.seen = now;
        p.forwarder = receiver;
        p.payloadHash = fnv1a64(BytesView(nwk.payload));
        p.fp = fingerprint(nwk.src.value, nwk.seq, BytesView(nwk.payload));
        p.originEntity = net::toString(nwk.src);
        pending_[key] = std::move(p);
      }
    }
  }
}

void ForwardingWatchdog::resolve(const std::string& key,
                                 const std::string& bySender,
                                 std::uint64_t newPayloadHash, SimTime now) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  if (it->second.forwarder != bySender) return;  // someone else's copy
  if (newPayloadHash != it->second.payloadHash) {
    alterations_.push_back(AlterationEvent{bySender, now,
                                           it->second.originEntity,
                                           it->second.payloadHash,
                                           newPayloadHash});
  }
  addVerdict(bySender, Verdict{now, false, it->second.fp});
  pending_.erase(it);
}

void ForwardingWatchdog::expire(SimTime now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now >= it->second.seen + config_.timeout) {
      addVerdict(it->second.forwarder, Verdict{now, true, it->second.fp});
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void ForwardingWatchdog::addVerdict(const std::string& entity, Verdict v) {
  auto& deque = verdicts_[entity];
  deque.push_back(v);
  evict(deque, v.time);
}

void ForwardingWatchdog::evict(std::deque<Verdict>& verdicts,
                               SimTime now) const {
  const SimTime cutoff = now > config_.window ? now - config_.window : 0;
  while (!verdicts.empty() && verdicts.front().time <= cutoff) {
    verdicts.pop_front();
  }
}

std::size_t ForwardingWatchdog::samples(const std::string& entity,
                                        SimTime now) {
  auto it = verdicts_.find(entity);
  if (it == verdicts_.end()) return 0;
  evict(it->second, now);
  return it->second.size();
}

double ForwardingWatchdog::dropRatio(const std::string& entity, SimTime now) {
  auto it = verdicts_.find(entity);
  if (it == verdicts_.end()) return 0.0;
  evict(it->second, now);
  if (it->second.empty()) return 0.0;
  std::size_t dropped = 0;
  for (const Verdict& v : it->second) {
    if (v.dropped) ++dropped;
  }
  return static_cast<double>(dropped) / static_cast<double>(it->second.size());
}

std::vector<std::uint64_t> ForwardingWatchdog::droppedFingerprints(
    const std::string& entity, SimTime now) {
  std::vector<std::uint64_t> fps;
  auto it = verdicts_.find(entity);
  if (it == verdicts_.end()) return fps;
  evict(it->second, now);
  for (const Verdict& v : it->second) {
    if (v.dropped) fps.push_back(v.fp);
  }
  return fps;
}

std::vector<std::string> ForwardingWatchdog::observedForwarders(SimTime now) {
  std::vector<std::string> out;
  for (auto& [entity, deque] : verdicts_) {
    evict(deque, now);
    if (!deque.empty()) out.push_back(entity);
  }
  return out;
}

std::vector<ForwardingWatchdog::AlterationEvent>
ForwardingWatchdog::drainAlterations() {
  std::vector<AlterationEvent> out;
  out.swap(alterations_);
  return out;
}

std::size_t ForwardingWatchdog::memoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [key, p] : pending_) {
    bytes += key.size() + sizeof(Pending) + p.forwarder.size();
  }
  for (const auto& [entity, deque] : verdicts_) {
    bytes += entity.size() + deque.size() * sizeof(Verdict) + 32;
  }
  return bytes;
}

}  // namespace kalis::ids
