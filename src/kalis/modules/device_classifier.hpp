// Device Classifier sensing module.
//
// Infers each monitored entity's role in the attack-pattern taxonomy
// (Table I: Internet service / hub / sub / router) from its traffic shape:
//  - WiFi beacon senders whose BSSID equals their own address are routers;
//  - WPAN entities issuing commands to several peers, or acting as the CTP
//    root, are hubs;
//  - WPAN entities that only report/forward are subs.
//
// Publishes Role@<entity> = hub|sub|router. Downstream consumers: the
// taxonomy consistency bench and the smart-firewall policy examples.
#pragma once

#include <map>
#include <set>
#include <string>

#include "kalis/module.hpp"

namespace kalis::ids {

class DeviceClassifierModule final : public SensingModule {
 public:
  std::string name() const override { return "DeviceClassifierModule"; }

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::size_t memoryBytes() const override {
    std::size_t bytes = sizeof(*this);
    for (const auto& [k, v] : state_) bytes += k.size() + sizeof(EntityState) + 32;
    return bytes;
  }

 private:
  struct EntityState {
    std::set<std::string> commandTargets;
    bool isCtpRoot = false;
    bool isApBeaconer = false;
    bool sendsReports = false;
    std::string publishedRole;
  };
  std::map<std::string, EntityState> state_;
};

}  // namespace kalis::ids
