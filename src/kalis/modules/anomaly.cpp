#include "kalis/modules/anomaly.hpp"

#include <cmath>

namespace kalis::ids {

void AnomalyDetectionModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("learnTicks"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      learnTicks_ = static_cast<std::size_t>(*v);
    }
  }
  if (auto it = params.find("sigmas"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) sigmas_ = *v;
  }
  if (auto it = params.find("minAbsolute"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) minAbsolute_ = *v;
  }
}

void AnomalyDetectionModule::onTick(ModuleContext& ctx) {
  // Global (entity-less) traffic rates, straight from the Knowledge Base.
  for (const Knowgget& k :
       ctx.kb.byLabelPrefix(labels::kTrafficFrequency)) {
    if (!k.entity.empty() || k.creator != ctx.kb.selfId()) continue;
    const auto rate = parseDouble(k.value);
    if (!rate) continue;

    Baseline& baseline = baselines_[k.label];
    if (baseline.stats.count() < learnTicks_) {
      baseline.stats.add(*rate);
      continue;
    }
    const double mean = baseline.stats.mean();
    const double spread = std::max(baseline.stats.stddev(), 0.25);
    const bool anomalous =
        *rate >= minAbsolute_ && *rate > mean + sigmas_ * spread;
    if (anomalous) {
      if (shouldAlert(k.label, ctx.now, cooldown_)) {
        Alert alert;
        alert.type = AttackType::kUnknownAnomaly;
        alert.time = ctx.now;
        alert.moduleName = name();
        alert.confidence = 0.5;  // anomaly evidence is inherently weaker
        alert.detail = k.label + " rate " + formatDouble(*rate) +
                       "/s vs baseline " + formatDouble(mean) + "±" +
                       formatDouble(spread);
        ctx.raiseAlert(std::move(alert));
      }
      baseline.alertedLastTick = true;
      // Anomalous samples do not pollute the learned envelope.
      continue;
    }
    baseline.alertedLastTick = false;
    baseline.stats.add(*rate);
  }
}

}  // namespace kalis::ids
