// Mobility Awareness sensing module (paper §V): "detects mobility when any
// node's signal strength changes more than a certain threshold".
//
// Per monitored entity it keeps a fast and a slow RSSI EWMA; a sustained gap
// between them is movement. Publishes:
//   Mobility                       = true/false  (collective)
//   SignalStrength@<entity>        = <dBm>       (collective; the paper's
//                                     example of knowledge worth sharing)
#pragma once

#include <map>
#include <string>

#include "kalis/module.hpp"
#include "util/stats.hpp"

namespace kalis::ids {

class MobilityAwarenessModule final : public SensingModule {
 public:
  std::string name() const override { return "MobilityAwarenessModule"; }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::size_t memoryBytes() const override;

 private:
  struct EntityState {
    Ewma fast{0.30};
    Ewma slow{0.03};
    std::size_t samples = 0;
    double lastPublished = 1e9;  ///< last SignalStrength value written
    SimTime lastEvidence = 0;    ///< last time this entity looked mobile
    bool sawEvidence = false;
  };

  double thresholdDb_ = 6.0;        ///< fast-vs-slow gap meaning "moved"
  std::size_t minSamples_ = 10;
  Duration holdTime_ = seconds(10); ///< Mobility stays true this long after
                                    ///< the last movement evidence
  /// Network mobility needs movement evidence from at least this many
  /// distinct entities: one identity with two RSSI fingerprints is a
  /// replication symptom, not a mobile network.
  std::size_t minMobileEntities_ = 2;
  std::map<std::string, EntityState> entities_;
  bool published_ = false;
  bool publishedValue_ = false;
};

}  // namespace kalis::ids
