// Sinkhole attack detection: a node lures traffic by advertising an
// implausibly good route (CTP ETX ~0 without being the root, or an RPL rank
// below/at the root's). Fig. 3 circles this attack too — the technique is
// tied to the routing protocol in use and only makes sense on multi-hop
// networks.
#pragma once

#include <map>
#include <string>

#include "kalis/module.hpp"

namespace kalis::ids {

class SinkholeModule final : public DetectionModule {
 public:
  std::string name() const override { return "SinkholeModule"; }
  AttackType attack() const override { return AttackType::kSinkhole; }

  bool required(const KnowledgeBase& kb) const override {
    if (!kb.local<bool>(labels::kMultihopWpan).value_or(false)) return false;
    return kb.local<bool>("Protocols.CTP").value_or(false) ||
           kb.local<bool>("Protocols.RPL").value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Multihop*", "Protocols.CTP", "Protocols.RPL"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override {
    std::size_t bytes = sizeof(*this) + alertStateBytes();
    for (const auto& [k, v] : lastEtx_) bytes += k.size() + 16;
    return bytes;
  }

 private:
  std::uint16_t suddenDrop_ = 30;   ///< ETX improvement that is implausible
  std::uint16_t rootRank_ = 256;    ///< RPL: minimum legitimate non-root rank
  Duration cooldown_ = seconds(10);
  std::map<std::string, std::uint16_t> lastEtx_;  ///< by advertising entity
};

}  // namespace kalis::ids
