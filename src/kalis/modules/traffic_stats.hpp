// Traffic Statistics Collection sensing module (paper §V).
//
// Maintains packets-per-unit-of-time for every traffic type — globally and
// per monitored device — over a configurable unit (paper default: 5 s), and
// publishes them as multilevel knowggets:
//
//   TrafficFrequency.TCPSYN          = 0.037      (global rate, pkts/s)
//   TrafficFrequency.TCPSYN@0x0005   = 0.2        (per-device rate)
//
// It also publishes protocol-presence knowggets (Protocols.TCP = true, ...)
// which drive the activation of protocol-specific detection modules.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>

#include "kalis/entity_map.hpp"
#include "kalis/module.hpp"
#include "util/sliding_window.hpp"

namespace kalis::ids {

class TrafficStatsModule final : public SensingModule {
 public:
  TrafficStatsModule();

  std::string name() const override { return "TrafficStatsModule"; }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  /// Programmatic access for tests and anomaly modules.
  double globalRate(net::PacketType type, SimTime now);
  double deviceRate(net::PacketType type, const std::string& entity, SimTime now);

  std::uint32_t workUnitsPerPacket() const override { return 1; }
  std::size_t memoryBytes() const override;

 private:
  static const char* protocolOf(const net::Dissection& dis);

  Duration window_ = seconds(5);
  std::array<std::unique_ptr<SlidingCounter>, net::kNumPacketTypes> global_;
  // Per-device counters: one entity-keyed map per traffic type, created on
  // demand. Iterating type-major then label-ascending reproduces the old
  // std::map<std::pair<int, std::string>, ...> publication order exactly.
  std::array<EntityKeyedMap<SlidingCounter>, net::kNumPacketTypes> perDevice_;
  std::map<std::string, bool> protocolsSeen_;
  SimTime lastNow_ = 0;
};

}  // namespace kalis::ids
