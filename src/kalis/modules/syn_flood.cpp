#include "kalis/modules/syn_flood.hpp"

#include <set>

namespace kalis::ids {

void SynFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("rateThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) rateThresh_ = *v;
  }
  if (auto it = params.find("minSources"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSources_ = static_cast<std::size_t>(*v);
    }
  }
  if (auto it = params.find("halfOpenRatio"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) halfOpenRatio_ = *v;
  }
}

void SynFloodModule::evict(VictimState& state, SimTime now) {
  const SimTime cutoff = now > window_ ? now - window_ : 0;
  while (!state.syns.empty() && state.syns.front().time <= cutoff) {
    state.syns.pop_front();
  }
}

void SynFloodModule::onPacket(const net::CapturedPacket& pkt,
                              const net::Dissection& dis, ModuleContext& ctx) {
  (void)ctx;
  if (!dis.tcp) return;
  const auto netSrc = dis.networkSource();
  const auto netDst = dis.networkDest();
  if (!netSrc || !netDst) return;

  if (dis.type == net::PacketType::kTcpSyn) {
    VictimState& state = victims_[*netDst];
    state.syns.push_back(SynRecord{pkt.meta.timestamp, *netSrc,
                                   dis.linkSource(), dis.tcp->seq, false});
    evict(state, pkt.meta.timestamp);
    return;
  }

  // A handshake-completing ACK from the initiator: ackNo == server_isn+1 is
  // unknowable passively without tracking the SYN-ACK, so match on the
  // initiator's (src, seq): the final ACK carries seq == isn+1.
  if (dis.type == net::PacketType::kTcpAck) {
    auto it = victims_.find(*netDst);
    if (it == victims_.end()) return;
    for (SynRecord& rec : it->second.syns) {
      if (!rec.completed && rec.claimedSrc == *netSrc &&
          dis.tcp->seq == rec.isn + 1) {
        rec.completed = true;
        break;
      }
    }
  }
}

void SynFloodModule::onTick(ModuleContext& ctx) {
  for (auto& [victim, state] : victims_) {
    evict(state, ctx.now);
    if (state.syns.empty()) continue;
    std::size_t halfOpen = 0;
    std::set<std::string> sources;
    // Grace period: a SYN younger than 1 s may simply not be answered yet.
    std::size_t mature = 0;
    for (const SynRecord& rec : state.syns) {
      const bool isMature = ctx.now >= rec.time + seconds(1);
      if (!isMature) continue;
      ++mature;
      if (!rec.completed) {
        ++halfOpen;
        sources.insert(rec.claimedSrc);
      }
    }
    if (mature == 0) continue;
    const double halfOpenRate = static_cast<double>(halfOpen) / toSeconds(window_);
    const double ratio = static_cast<double>(halfOpen) / static_cast<double>(mature);
    if (halfOpenRate < rateThresh_ || sources.size() < minSources_ ||
        ratio < halfOpenRatio_) {
      continue;
    }
    if (!shouldAlert(victim, ctx.now, cooldown_)) continue;

    // Physical suspects: link transmitters of the half-open SYNs.
    std::map<std::string, std::size_t> linkCounts;
    for (const SynRecord& rec : state.syns) {
      if (!rec.completed) ++linkCounts[rec.linkSrc];
    }
    Alert alert;
    alert.type = AttackType::kSynFlood;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = victim;
    std::string best;
    std::size_t bestCount = 0;
    for (const auto& [src, n] : linkCounts) {
      if (n > bestCount) {
        best = src;
        bestCount = n;
      }
    }
    alert.suspectEntities.push_back(best);
    alert.detail = "half-open SYN rate " + formatDouble(halfOpenRate) +
                   "/s, ratio " + formatDouble(ratio) + ", " +
                   std::to_string(sources.size()) + " sources";
    ctx.raiseAlert(std::move(alert));
  }
}

std::size_t SynFloodModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& [victim, state] : victims_) {
    bytes += victim.size();
    for (const auto& rec : state.syns) {
      bytes += sizeof(rec) + rec.claimedSrc.size() + rec.linkSrc.size();
    }
  }
  return bytes;
}

}  // namespace kalis::ids
