#include "kalis/modules/syn_flood.hpp"

#include <set>

namespace kalis::ids {

void SynFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("rateThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) rateThresh_ = *v;
  }
  if (auto it = params.find("minSources"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSources_ = static_cast<std::size_t>(*v);
    }
  }
  if (auto it = params.find("halfOpenRatio"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) halfOpenRatio_ = *v;
  }
}

void SynFloodModule::evict(VictimState& state, SimTime now) {
  const SimTime cutoff = now > window_ ? now - window_ : 0;
  while (!state.syns.empty() && state.syns.front().time <= cutoff) {
    state.syns.pop_front();
  }
}

void SynFloodModule::onPacket(const net::CapturedPacket& pkt,
                              const net::Dissection& dis, ModuleContext& ctx) {
  (void)ctx;
  if (!dis.tcp) return;
  const net::EntityRef netSrc = dis.networkSourceRef();
  const net::EntityRef netDst = dis.networkDestRef();
  if (!netSrc.valid() || !netDst.valid()) return;

  if (dis.type == net::PacketType::kTcpSyn) {
    auto [entry, created] = victims_.tryEmplace(netDst);
    VictimState& state = entry->value;
    state.syns.push_back(SynRecord{pkt.meta.timestamp, netSrc,
                                   dis.linkSourceRef(), dis.tcp->seq, false});
    evict(state, pkt.meta.timestamp);
    return;
  }

  // A handshake-completing ACK from the initiator: ackNo == server_isn+1 is
  // unknowable passively without tracking the SYN-ACK, so match on the
  // initiator's (src, seq): the final ACK carries seq == isn+1.
  if (dis.type == net::PacketType::kTcpAck) {
    auto* entry = victims_.find(netDst);
    if (!entry) return;
    for (SynRecord& rec : entry->value.syns) {
      if (!rec.completed && rec.claimedSrc == netSrc &&
          dis.tcp->seq == rec.isn + 1) {
        rec.completed = true;
        break;
      }
    }
  }
}

void SynFloodModule::onTick(ModuleContext& ctx) {
  victims_.forEachOrdered([&](EntityKeyedMap<VictimState>::Entry& entry) {
    VictimState& state = entry.value;
    evict(state, ctx.now);
    if (state.syns.empty()) return;
    std::size_t halfOpen = 0;
    std::set<net::EntityRef> sources;
    // Grace period: a SYN younger than 1 s may simply not be answered yet.
    std::size_t mature = 0;
    for (const SynRecord& rec : state.syns) {
      const bool isMature = ctx.now >= rec.time + seconds(1);
      if (!isMature) continue;
      ++mature;
      if (!rec.completed) {
        ++halfOpen;
        sources.insert(rec.claimedSrc);
      }
    }
    if (mature == 0) return;
    const double halfOpenRate =
        static_cast<double>(halfOpen) / toSeconds(window_);
    const double ratio =
        static_cast<double>(halfOpen) / static_cast<double>(mature);
    if (halfOpenRate < rateThresh_ || sources.size() < minSources_ ||
        ratio < halfOpenRatio_) {
      return;
    }
    if (!shouldAlert(entry.label, ctx.now, cooldown_)) return;

    // Physical suspects: link transmitters of the half-open SYNs.
    std::map<net::EntityRef, std::size_t> linkCounts;
    for (const SynRecord& rec : state.syns) {
      if (!rec.completed) ++linkCounts[rec.linkSrc];
    }
    Alert alert;
    alert.type = AttackType::kSynFlood;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = entry.label;
    alert.suspectEntities.push_back(dominantEntity(linkCounts).toString());
    alert.detail = "half-open SYN rate " + formatDouble(halfOpenRate) +
                   "/s, ratio " + formatDouble(ratio) + ", " +
                   std::to_string(sources.size()) + " sources";
    ctx.raiseAlert(std::move(alert));
  });
}

std::size_t SynFloodModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  bytes += victims_.entryOverheadBytes();
  victims_.forEachUnordered([&](const EntityKeyedMap<VictimState>::Entry& e) {
    bytes += e.value.syns.size() * sizeof(SynRecord);
  });
  return bytes;
}

}  // namespace kalis::ids
