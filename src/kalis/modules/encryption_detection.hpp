// Encryption Detection sensing module.
//
// Fig. 3 includes deployed prevention techniques among the features: if the
// monitored devices encrypt/authenticate their traffic, attacks like data
// alteration are impossible and the corresponding detection technique can be
// deactivated. Evidence used:
//  - the 802.15.4 link-security bit and ZigBee NWK security bit,
//  - the 802.11 "protected" bit,
//  - payload byte-entropy (TLS-like payloads exceed ~7.2 bits/byte).
//
// Publishes LinkEncryption.<medium> = true and Encrypted@<entity> = true.
#pragma once

#include <map>
#include <string>

#include "kalis/module.hpp"

namespace kalis::ids {

class EncryptionDetectionModule final : public SensingModule {
 public:
  std::string name() const override { return "EncryptionDetectionModule"; }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;

  std::size_t memoryBytes() const override {
    std::size_t bytes = sizeof(*this);
    for (const auto& [k, v] : entityEncrypted_) bytes += k.size() + 16;
    return bytes;
  }

 private:
  double entropyThreshold_ = 7.2;
  std::size_t minPayload_ = 64;
  std::map<std::string, bool> entityEncrypted_;
  bool wpanPublished_ = false;
  bool wifiPublished_ = false;
};

}  // namespace kalis::ids
