#include "kalis/modules/deauth_flood.hpp"

namespace kalis::ids {

void DeauthFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("rateThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) rateThresh_ = *v;
  }
}

void DeauthFloodModule::onPacket(const net::CapturedPacket& pkt,
                                 const net::Dissection& dis,
                                 ModuleContext& ctx) {
  (void)ctx;
  if (dis.type != net::PacketType::kWifiDeauth) return;
  const net::EntityRef victim = dis.linkDestRef();
  auto [entry, inserted] = deauths_.tryEmplace(victim, window_);
  entry->value.record(pkt.meta.timestamp);
  lastLinkSender_[victim] = dis.linkSourceRef();
}

void DeauthFloodModule::onTick(ModuleContext& ctx) {
  deauths_.forEachOrdered([&](EntityKeyedMap<SlidingCounter>::Entry& entry) {
    const double rate = entry.value.rate(ctx.now);
    if (rate < rateThresh_) return;
    if (!shouldAlert(entry.label, ctx.now, cooldown_)) return;
    Alert alert;
    alert.type = AttackType::kDeauthFlood;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = entry.label;
    alert.suspectEntities.push_back(lastLinkSender_[entry.key].toString());
    alert.detail = "deauth rate " + formatDouble(rate) + "/s";
    ctx.raiseAlert(std::move(alert));
  });
}

}  // namespace kalis::ids
