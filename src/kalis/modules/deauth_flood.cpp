#include "kalis/modules/deauth_flood.hpp"

namespace kalis::ids {

void DeauthFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("rateThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) rateThresh_ = *v;
  }
}

void DeauthFloodModule::onPacket(const net::CapturedPacket& pkt,
                                 const net::Dissection& dis,
                                 ModuleContext& ctx) {
  (void)ctx;
  if (dis.type != net::PacketType::kWifiDeauth) return;
  const std::string victim = dis.linkDest();
  auto [it, inserted] = deauths_.try_emplace(victim, window_);
  it->second.record(pkt.meta.timestamp);
  lastLinkSender_[victim] = dis.linkSource();
}

void DeauthFloodModule::onTick(ModuleContext& ctx) {
  for (auto& [victim, counter] : deauths_) {
    const double rate = counter.rate(ctx.now);
    if (rate < rateThresh_) continue;
    if (!shouldAlert(victim, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kDeauthFlood;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = victim;
    alert.suspectEntities.push_back(lastLinkSender_[victim]);
    alert.detail = "deauth rate " + formatDouble(rate) + "/s";
    ctx.raiseAlert(std::move(alert));
  }
}

}  // namespace kalis::ids
