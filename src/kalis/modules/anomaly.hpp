// Anomaly-based detection module (paper §II-B / §V: the Traffic Statistics
// module "supports ... the use of anomaly-based detection modules that can
// detect unknown attacks, even when their signature is not predetermined").
//
// Consumes the TrafficFrequency.* knowggets published by the Traffic
// Statistics module, learns a per-type baseline (Welford mean/stddev over
// tick samples), and raises UnknownAnomaly alerts when a type's rate leaves
// the learned envelope. Because anomaly techniques trade false positives for
// breadth (§II-B), the module is opt-in: it activates only when the
// operator sets the `AnomalyDetection` knowgget (usually via the
// configuration file: `knowggets = { AnomalyDetection = true }`).
#pragma once

#include <map>
#include <string>

#include "kalis/module.hpp"
#include "util/stats.hpp"

namespace kalis::ids {

class AnomalyDetectionModule final : public DetectionModule {
 public:
  std::string name() const override { return "AnomalyDetectionModule"; }
  AttackType attack() const override { return AttackType::kUnknownAnomaly; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>("AnomalyDetection").value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"AnomalyDetection"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 1; }
  std::size_t memoryBytes() const override {
    std::size_t bytes = sizeof(*this) + alertStateBytes();
    for (const auto& [k, v] : baselines_) bytes += k.size() + sizeof(v) + 32;
    return bytes;
  }

 private:
  struct Baseline {
    RunningStats stats;
    bool alertedLastTick = false;
  };

  std::size_t learnTicks_ = 15;   ///< samples before the envelope is trusted
  double sigmas_ = 4.0;           ///< deviation threshold
  double minAbsolute_ = 3.0;      ///< rate floor (pkts/s) below which no alert
  Duration cooldown_ = seconds(15);
  std::map<std::string, Baseline> baselines_;  ///< by traffic-type label
};

}  // namespace kalis::ids
