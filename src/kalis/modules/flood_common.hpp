// Shared per-victim event bookkeeping for flood-style detection modules
// (ICMP flood, Smurf, SYN flood, hello flood, deauth flood).
//
// Events carry net::EntityRef identities (fixed-size, trivially copyable)
// instead of strings, so recording a packet on the hot path performs no
// allocation beyond the deque slot. String forms are materialized only at
// alert time.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <string>

#include "kalis/entity_map.hpp"
#include "net/packet.hpp"
#include "util/types.hpp"

namespace kalis::ids {

/// Events aimed at one victim within a trailing window.
class VictimEventLog {
 public:
  struct Event {
    SimTime time = 0;
    net::EntityRef claimedSrc;  ///< network-layer source claimed in the packet
    net::EntityRef linkSrc;     ///< who physically transmitted it
    double rssiDbm = 0.0;
    net::Medium medium = net::Medium::kWifi;
  };

  explicit VictimEventLog(Duration window) : window_(window) {}

  void record(Event ev) {
    events_.push_back(ev);
    evict(ev.time);
  }

  void evict(SimTime now) {
    const SimTime cutoff = now > window_ ? now - window_ : 0;
    while (!events_.empty() && events_.front().time <= cutoff) {
      events_.pop_front();
    }
  }

  std::size_t count(SimTime now) {
    evict(now);
    return events_.size();
  }

  double rate(SimTime now) {
    evict(now);
    return static_cast<double>(events_.size()) / toSeconds(window_);
  }

  std::size_t distinctClaimedSources(SimTime now) {
    evict(now);
    std::set<net::EntityRef> srcs;
    for (const Event& ev : events_) srcs.insert(ev.claimedSrc);
    return srcs.size();
  }

  /// Most frequent physical (link-layer) transmitter in the window; ties
  /// break toward the smallest string form (legacy string-map order).
  net::EntityRef dominantLinkSource(SimTime now) {
    evict(now);
    std::map<net::EntityRef, std::size_t> counts;
    for (const Event& ev : events_) ++counts[ev.linkSrc];
    return dominantEntity(counts);
  }

  /// RSSI spread (max - min) of the windowed events — near zero when a
  /// single physical attacker forges many identities.
  double rssiSpread(SimTime now) {
    evict(now);
    if (events_.empty()) return 0.0;
    double lo = events_.front().rssiDbm;
    double hi = lo;
    for (const Event& ev : events_) {
      lo = ev.rssiDbm < lo ? ev.rssiDbm : lo;
      hi = ev.rssiDbm > hi ? ev.rssiDbm : hi;
    }
    return hi - lo;
  }

  net::Medium dominantMedium(SimTime now) {
    evict(now);
    std::size_t perMedium[3] = {0, 0, 0};
    for (const Event& ev : events_) {
      ++perMedium[static_cast<std::size_t>(ev.medium)];
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < 3; ++i) {
      if (perMedium[i] > perMedium[best]) best = i;
    }
    return static_cast<net::Medium>(best);
  }

  const std::deque<Event>& events() const { return events_; }

  std::size_t memoryBytes() const { return events_.size() * sizeof(Event); }

 private:
  Duration window_;
  std::deque<Event> events_;
};

}  // namespace kalis::ids
