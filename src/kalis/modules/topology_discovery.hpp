// Topology Discovery sensing module (paper §IV-B4, §V).
//
// Differentiates multi-hop from single-hop networks per medium by analyzing
// captured traffic:
//  - CTP data with THL >= 1 has demonstrably been forwarded;
//  - CTP routing beacons advertising a parent with cost beyond one hop;
//  - ZigBee NWK frames whose link-layer sender differs from the NWK source
//    (a relay in action), or whose radius has been decremented;
//  - RPL DIOs advertising rank beyond the root's;
//  - the same (origin, seqno) observed from two different link senders.
//
// After `settlePackets` frames on a medium with no such evidence, the module
// commits Multihop.<medium>=false — negative knowledge is what lets Kalis
// rule out attacks like Smurf on single-hop networks.
//
// Also published: Multihop (global OR), MonitoredNodes, CtpRoot.
#pragma once

#include <map>
#include <set>
#include <string>

#include "kalis/module.hpp"

namespace kalis::ids {

class TopologyDiscoveryModule final : public SensingModule {
 public:
  std::string name() const override { return "TopologyDiscoveryModule"; }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  void noteMultihop(net::Medium medium, ModuleContext& ctx);
  void maybeSettle(net::Medium medium, ModuleContext& ctx);
  void publishGlobal(ModuleContext& ctx);
  static const char* mediumLabel(net::Medium medium);

  // Evidence bookkeeping per medium (index = Medium).
  struct MediumState {
    std::uint64_t packets = 0;
    bool multihop = false;
    bool settled = false;  ///< a Multihop.<medium> knowgget has been written
  };
  MediumState medium_[3];

  std::set<std::string> entities_;                     ///< distinct link srcs
  std::map<std::uint32_t, std::string> originSender_;  ///< (origin,seq) -> link src
  std::string ctpRoot_;
  std::uint64_t settlePackets_ = 30;
};

}  // namespace kalis::ids
