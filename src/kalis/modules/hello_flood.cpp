#include "kalis/modules/hello_flood.hpp"

namespace kalis::ids {

void HelloFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("rateThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) rateThresh_ = *v;
  }
}

void HelloFloodModule::onPacket(const net::CapturedPacket& pkt,
                                const net::Dissection& dis,
                                ModuleContext& ctx) {
  (void)ctx;
  const bool isRoutingBeacon = dis.type == net::PacketType::kCtpRouting ||
                               dis.type == net::PacketType::kRplDio ||
                               dis.type == net::PacketType::kZigbeeRouting;
  if (!isRoutingBeacon) return;
  auto [entry, inserted] = beacons_.tryEmplace(dis.linkSourceRef(), window_);
  entry->value.record(pkt.meta.timestamp);
}

void HelloFloodModule::onTick(ModuleContext& ctx) {
  beacons_.forEachOrdered(
      [&](EntityKeyedMap<SlidingCounter>::Entry& entry) {
        const double rate = entry.value.rate(ctx.now);
        if (rate < rateThresh_) return;
        if (!shouldAlert(entry.label, ctx.now, cooldown_)) return;
        Alert alert;
        alert.type = AttackType::kHelloFlood;
        alert.time = ctx.now;
        alert.moduleName = name();
        alert.suspectEntities.push_back(entry.label);
        alert.detail = "routing-beacon rate " + formatDouble(rate) + "/s";
        ctx.raiseAlert(std::move(alert));
      });
}

}  // namespace kalis::ids
