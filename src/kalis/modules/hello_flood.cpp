#include "kalis/modules/hello_flood.hpp"

namespace kalis::ids {

void HelloFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("rateThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) rateThresh_ = *v;
  }
}

void HelloFloodModule::onPacket(const net::CapturedPacket& pkt,
                                const net::Dissection& dis,
                                ModuleContext& ctx) {
  (void)ctx;
  const bool isRoutingBeacon = dis.type == net::PacketType::kCtpRouting ||
                               dis.type == net::PacketType::kRplDio ||
                               dis.type == net::PacketType::kZigbeeRouting;
  if (!isRoutingBeacon) return;
  auto [it, inserted] = beacons_.try_emplace(dis.linkSource(), window_);
  it->second.record(pkt.meta.timestamp);
}

void HelloFloodModule::onTick(ModuleContext& ctx) {
  for (auto& [entity, counter] : beacons_) {
    const double rate = counter.rate(ctx.now);
    if (rate < rateThresh_) continue;
    if (!shouldAlert(entity, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kHelloFlood;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.suspectEntities.push_back(entity);
    alert.detail = "routing-beacon rate " + formatDouble(rate) + "/s";
    ctx.raiseAlert(std::move(alert));
  }
}

}  // namespace kalis::ids
