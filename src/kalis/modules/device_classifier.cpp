#include "kalis/modules/device_classifier.hpp"

#include "net/zigbee.hpp"

namespace kalis::ids {

void DeviceClassifierModule::onPacket(const net::CapturedPacket& pkt,
                                      const net::Dissection& dis,
                                      ModuleContext& ctx) {
  (void)pkt;
  (void)ctx;
  const std::string sender = dis.linkSource();
  if (sender == "?") return;
  EntityState& s = state_[sender];

  if (dis.wifi && dis.wifi->kind == net::WifiFrameKind::kBeacon &&
      dis.wifi->src == dis.wifi->bssid) {
    s.isApBeaconer = true;
  }
  if (dis.ctpBeacon && dis.ctpBeacon->etx == 0) s.isCtpRoot = true;

  if (dis.zigbee && net::toString(dis.zigbee->src) == sender &&
      !dis.zigbee->payload.empty()) {
    const std::uint8_t tag = dis.zigbee->payload[0];
    if (tag == net::kZigbeeAppCommand) {
      s.commandTargets.insert(net::toString(dis.zigbee->dst));
    } else if (tag == net::kZigbeeAppReport) {
      s.sendsReports = true;
    }
  }
}

void DeviceClassifierModule::onTick(ModuleContext& ctx) {
  for (auto& [entity, s] : state_) {
    std::string role;
    if (s.isApBeaconer) {
      role = "router";
    } else if (s.isCtpRoot || s.commandTargets.size() >= 2) {
      role = "hub";
    } else if (s.sendsReports || !s.commandTargets.empty()) {
      role = "sub";
    }
    if (!role.empty() && role != s.publishedRole) {
      s.publishedRole = role;
      ctx.kb.put(labels::kRole, role, entity);
    }
  }
}

}  // namespace kalis::ids
