// Hello-flood detection: an attacker blanketing the network with routing
// beacons (CTP routing frames, RPL DIOs/DIS, ZigBee link status) to poison
// neighbor tables or drain batteries. Symptom: beacon rate from one entity
// far above the protocol's natural cadence.
#pragma once

#include <map>
#include <string>

#include "kalis/entity_map.hpp"
#include "kalis/module.hpp"
#include "util/sliding_window.hpp"

namespace kalis::ids {

class HelloFloodModule final : public DetectionModule {
 public:
  std::string name() const override { return "HelloFloodModule"; }
  AttackType attack() const override { return AttackType::kHelloFlood; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>("Protocols.CTP").value_or(false) ||
           kb.local<bool>("Protocols.RPL").value_or(false) ||
           kb.local<bool>("Protocols.ZigBee").value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Protocols.CTP", "Protocols.RPL", "Protocols.ZigBee"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::size_t memoryBytes() const override {
    std::size_t bytes = sizeof(*this) + alertStateBytes();
    bytes += beacons_.entryOverheadBytes();
    beacons_.forEachUnordered(
        [&](const EntityKeyedMap<SlidingCounter>::Entry& e) {
          bytes += e.value.memoryBytes() + 32;
        });
    return bytes;
  }

 private:
  double rateThresh_ = 5.0;  ///< beacons/s per entity (natural cadence ~0.5)
  Duration window_ = seconds(5);
  Duration cooldown_ = seconds(15);
  EntityKeyedMap<SlidingCounter> beacons_;  ///< by entity
};

}  // namespace kalis::ids
