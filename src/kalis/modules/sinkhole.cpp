#include "kalis/modules/sinkhole.hpp"

namespace kalis::ids {

void SinkholeModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("suddenDrop"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      suddenDrop_ = static_cast<std::uint16_t>(*v);
    }
  }
}

void SinkholeModule::onPacket(const net::CapturedPacket& pkt,
                              const net::Dissection& dis, ModuleContext& ctx) {
  (void)pkt;
  if (dis.ctpBeacon) {
    const std::string sender = dis.linkSource();
    const std::uint16_t etx = dis.ctpBeacon->etx;
    const std::string root = ctx.kb.local(labels::kCtpRoot).value_or("");

    bool suspicious = false;
    std::string why;
    if (etx == 0 && !root.empty() && sender != root) {
      suspicious = true;
      why = "non-root advertising ETX 0";
    }
    auto it = lastEtx_.find(sender);
    if (it != lastEtx_.end() && it->second != 0xffff && etx != 0xffff &&
        it->second > etx && it->second - etx >= suddenDrop_) {
      suspicious = true;
      why = "ETX collapsed " + std::to_string(it->second) + " -> " +
            std::to_string(etx);
    }
    lastEtx_[sender] = etx;

    if (suspicious && shouldAlert(sender, ctx.now, cooldown_)) {
      Alert alert;
      alert.type = AttackType::kSinkhole;
      alert.time = ctx.now;
      alert.moduleName = name();
      alert.suspectEntities.push_back(sender);
      alert.detail = why;
      ctx.raiseAlert(std::move(alert));
    }
    return;
  }

  if (dis.rplDio) {
    const std::string sender = dis.linkSource();
    // The DODAG root holds rank 256 (MinHopRankIncrease); any other node
    // advertising rank <= 256 is luring traffic.
    const std::string rootEntity =
        dis.rplDio->dodagId.embeddedShort()
            ? net::toString(*dis.rplDio->dodagId.embeddedShort())
            : "";
    if (dis.rplDio->rank <= rootRank_ && sender != rootEntity &&
        shouldAlert(sender, ctx.now, cooldown_)) {
      Alert alert;
      alert.type = AttackType::kSinkhole;
      alert.time = ctx.now;
      alert.moduleName = name();
      alert.suspectEntities.push_back(sender);
      alert.detail =
          "non-root advertising RPL rank " + std::to_string(dis.rplDio->rank);
      ctx.raiseAlert(std::move(alert));
    }
  }
}

}  // namespace kalis::ids
