#include "kalis/modules/mobility_awareness.hpp"

#include <cmath>

namespace kalis::ids {

void MobilityAwarenessModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("thresholdDb"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) thresholdDb_ = *v;
  }
  if (auto it = params.find("minSamples"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSamples_ = static_cast<std::size_t>(*v);
    }
  }
  if (auto it = params.find("holdSeconds"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) {
      holdTime_ = static_cast<Duration>(*v * 1e6);
    }
  }
  if (auto it = params.find("minMobileEntities"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minMobileEntities_ = static_cast<std::size_t>(*v);
    }
  }
}

void MobilityAwarenessModule::onPacket(const net::CapturedPacket& pkt,
                                       const net::Dissection& dis,
                                       ModuleContext& ctx) {
  (void)ctx;
  // Only link-layer senders we can identify contribute RSSI fingerprints.
  const std::string entity = dis.linkSource();
  if (entity == "?") return;
  EntityState& state = entities_[entity];
  state.fast.add(pkt.meta.rssiDbm);
  state.slow.add(pkt.meta.rssiDbm);
  ++state.samples;
  if (state.samples >= minSamples_ &&
      std::fabs(state.fast.value() - state.slow.value()) > thresholdDb_) {
    state.lastEvidence = pkt.meta.timestamp;
    state.sawEvidence = true;
  }
}

void MobilityAwarenessModule::onTick(ModuleContext& ctx) {
  // Publish per-entity signal strength when it moved >= 2 dB since the last
  // write (collective: peers correlate these to confirm network mobility).
  for (auto& [entity, state] : entities_) {
    if (state.samples < 3) continue;
    const double current = state.fast.value();
    if (std::fabs(current - state.lastPublished) >= 2.0) {
      state.lastPublished = current;
      ctx.kb.put(labels::kSignalStrength,
                    static_cast<long long>(std::lround(current)), entity,
                    /*collective=*/true);
    }
  }

  // Publish the network-wide mobility verdict once we have a basis for it.
  bool haveBasis = false;
  for (const auto& [entity, state] : entities_) {
    if (state.samples >= minSamples_) {
      haveBasis = true;
      break;
    }
  }
  if (!haveBasis) return;

  std::size_t mobileEntities = 0;
  for (const auto& [entity, state] : entities_) {
    if (state.sawEvidence && ctx.now <= state.lastEvidence + holdTime_) {
      ++mobileEntities;
    }
  }
  const bool mobileNow = mobileEntities >= minMobileEntities_;
  if (!published_ || publishedValue_ != mobileNow) {
    published_ = true;
    publishedValue_ = mobileNow;
    ctx.kb.put(labels::kMobility, mobileNow, "", /*collective=*/true);
  }
}

std::size_t MobilityAwarenessModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [entity, state] : entities_) {
    bytes += entity.size() + sizeof(EntityState) + 16;
  }
  return bytes;
}

}  // namespace kalis::ids
