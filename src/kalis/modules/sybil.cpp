#include "kalis/modules/sybil.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace kalis::ids {

// --- SybilSinglehopModule -------------------------------------------------------

void SybilSinglehopModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("clusterEpsilonDb"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) clusterEpsilonDb_ = *v;
  }
  if (auto it = params.find("minIdentities"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minIdentities_ = static_cast<std::size_t>(*v);
    }
  }
}

void SybilSinglehopModule::onPacket(const net::CapturedPacket& pkt,
                                    const net::Dissection& dis,
                                    ModuleContext& ctx) {
  (void)ctx;
  if (!dis.wpan) return;
  IdentityState& s = identities_[dis.linkSource()];
  if (s.packets == 0) s.firstSeen = pkt.meta.timestamp;
  s.rssi.add(pkt.meta.rssiDbm);
  s.lastSeen = pkt.meta.timestamp;
  ++s.packets;
}

void SybilSinglehopModule::onTick(ModuleContext& ctx) {
  // Collect recently active identities with a settled fingerprint.
  struct Candidate {
    const std::string* entity;
    double rssi;
    SimTime firstSeen;
  };
  std::vector<Candidate> active;
  const SimTime cutoff = ctx.now > window_ ? ctx.now - window_ : 0;
  for (const auto& [entity, s] : identities_) {
    if (s.lastSeen > cutoff && s.packets >= minPackets_) {
      active.push_back(Candidate{&entity, s.rssi.value(), s.firstSeen});
    }
  }
  if (active.size() < minIdentities_) return;
  std::sort(active.begin(), active.end(),
            [](const Candidate& a, const Candidate& b) { return a.rssi < b.rssi; });

  // Sliding group over the sorted fingerprints: identities within epsilon of
  // each other form one physical-transmitter cluster.
  std::size_t begin = 0;
  for (std::size_t end = 0; end <= active.size(); ++end) {
    const bool boundary =
        end == active.size() ||
        (end > begin && active[end].rssi - active[end - 1].rssi > clusterEpsilonDb_);
    if (!boundary) continue;
    const std::size_t count = end - begin;
    if (count >= minIdentities_ &&
        active[end - 1].rssi - active[begin].rssi <= 2 * clusterEpsilonDb_) {
      // Require the cluster to be "new" in aggregate: a set of long-lived
      // legitimate identities won't all have appeared recently.
      std::size_t recent = 0;
      for (std::size_t i = begin; i < end; ++i) {
        if (active[i].firstSeen > cutoff) ++recent;
      }
      if (recent * 2 >= count) {
        const std::string clusterKey =
            "cluster@" + formatDouble(std::round(active[begin].rssi));
        if (shouldAlert(clusterKey, ctx.now, cooldown_)) {
          Alert alert;
          alert.type = AttackType::kSybil;
          alert.time = ctx.now;
          alert.moduleName = name();
          for (std::size_t i = begin; i < end; ++i) {
            alert.suspectEntities.push_back(*active[i].entity);
          }
          alert.detail = std::to_string(count) +
                         " identities sharing one RSSI fingerprint (" +
                         formatDouble(active[begin].rssi) + " dBm)";
          ctx.raiseAlert(std::move(alert));
        }
      }
    }
    begin = end;
  }
}

std::size_t SybilSinglehopModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& [entity, s] : identities_) {
    bytes += entity.size() + sizeof(IdentityState) + 32;
  }
  return bytes;
}

// --- SybilMultihopModule --------------------------------------------------------

void SybilMultihopModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("minGhosts"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minGhosts_ = static_cast<std::size_t>(*v);
    }
  }
}

void SybilMultihopModule::onPacket(const net::CapturedPacket& pkt,
                                   const net::Dissection& dis,
                                   ModuleContext& ctx) {
  (void)ctx;
  if (!dis.wpan) return;
  const std::string sender = dis.linkSource();
  IdentityState& s = identities_[sender];
  if (s.lastSeen == 0) s.firstSeen = pkt.meta.timestamp;
  s.lastSeen = pkt.meta.timestamp;

  if (dis.ctpBeacon || dis.type == net::PacketType::kZigbeeRouting ||
      dis.type == net::PacketType::kRplDio) {
    s.routedEver = true;  // participates in routing: not a ghost
  }
  if (dis.ctpData) {
    ++s.dataPackets;
    // A forwarding node (THL>0 under its link id) is routing.
    if (dis.ctpData->thl > 0 &&
        net::toString(dis.ctpData->origin) != sender) {
      s.routedEver = true;
    }
    // The *origin* identity inside a forwarded frame is also being claimed:
    // track it so fabricated origins count as identities.
    const std::string origin = net::toString(dis.ctpData->origin);
    IdentityState& o = identities_[origin];
    if (o.lastSeen == 0) o.firstSeen = pkt.meta.timestamp;
    o.lastSeen = pkt.meta.timestamp;
    ++o.dataPackets;
  }
}

void SybilMultihopModule::onTick(ModuleContext& ctx) {
  const SimTime cutoff = ctx.now > window_ ? ctx.now - window_ : 0;
  std::vector<std::string> ghosts;
  for (const auto& [entity, s] : identities_) {
    if (s.lastSeen > cutoff && s.firstSeen > cutoff && !s.routedEver &&
        s.dataPackets >= 1) {
      ghosts.push_back(entity);
    }
  }
  if (ghosts.size() < minGhosts_) return;
  if (!shouldAlert("ghost-burst", ctx.now, cooldown_)) return;
  Alert alert;
  alert.type = AttackType::kSybil;
  alert.time = ctx.now;
  alert.moduleName = name();
  alert.suspectEntities = ghosts;
  alert.detail = std::to_string(ghosts.size()) +
                 " fresh identities injecting data without ever routing";
  ctx.raiseAlert(std::move(alert));
}

std::size_t SybilMultihopModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& [entity, s] : identities_) {
    bytes += entity.size() + sizeof(IdentityState) + 32;
  }
  return bytes;
}

}  // namespace kalis::ids
