#include "kalis/modules/icmp_flood.hpp"

namespace kalis::ids {

bool IcmpFloodModule::required(const KnowledgeBase& kb) const {
  return kb.local<bool>("Protocols.ICMP").value_or(false);
}

void IcmpFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("detectionThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) detectionThresh_ = *v;
  }
  if (auto it = params.find("minSources"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSources_ = static_cast<std::size_t>(*v);
    }
  }
  if (auto it = params.find("windowSeconds"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) {
      window_ = static_cast<Duration>(*v * 1e6);
      replyLog_.clear();
    }
  }
}

void IcmpFloodModule::onPacket(const net::CapturedPacket& pkt,
                               const net::Dissection& dis, ModuleContext& ctx) {
  (void)ctx;
  const bool isReply = dis.type == net::PacketType::kIcmpEchoRep ||
                       dis.type == net::PacketType::kIcmpv6EchoRep;
  const bool isRequest = dis.type == net::PacketType::kIcmpEchoReq ||
                         dis.type == net::PacketType::kIcmpv6EchoReq;
  if (!isReply && !isRequest) return;

  const auto netSrc = dis.networkSource();
  const auto netDst = dis.networkDest();
  if (!netSrc || !netDst) return;
  const std::string linkSrc = dis.linkSource();

  // Learn the usual physical identity behind each network source; a later
  // mismatch is spoofing evidence.
  auto [it, inserted] = identityBinding_.try_emplace(*netSrc, linkSrc);
  const bool spoofed = !inserted && it->second != linkSrc;

  if (isRequest && spoofed) {
    // A request claiming to come from an already-known host but transmitted
    // by a different radio: the Smurf trigger (victim = claimed source).
    spoofedRequests_[*netSrc] = pkt.meta.timestamp;
    return;
  }

  if (isReply) {
    auto [log, created] = replyLog_.try_emplace(*netDst, window_);
    log->second.record(VictimEventLog::Event{pkt.meta.timestamp, *netSrc,
                                             linkSrc, pkt.meta.rssiDbm,
                                             pkt.medium});
  }
}

void IcmpFloodModule::onTick(ModuleContext& ctx) {
  const bool trustKnowledge = ctx.kb.writesEnabled();
  for (auto& [victim, log] : replyLog_) {
    if (log.rate(ctx.now) < detectionThresh_) continue;
    if (log.distinctClaimedSources(ctx.now) < minSources_) continue;

    // Symptom present. Consult the Knowledge Base for the topology of the
    // medium the flood rides on.
    const net::Medium medium = log.dominantMedium(ctx.now);
    const char* label = medium == net::Medium::kIeee802154
                            ? labels::kMultihopWpan
                            : labels::kMultihopWifi;
    const auto multihop = ctx.kb.local<bool>(label);

    if (trustKnowledge) {
      if (!multihop.has_value()) continue;  // still learning: don't guess
      if (*multihop) {
        // Multi-hop: Smurf is possible. If we saw the Smurf trigger
        // (spoofed requests in the victim's name), leave it to SmurfModule.
        auto spoofIt = spoofedRequests_.find(victim);
        if (spoofIt != spoofedRequests_.end() &&
            ctx.now <= spoofIt->second + window_) {
          continue;
        }
      }
    }

    if (!shouldAlert(victim, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kIcmpFlood;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = victim;
    alert.confidence = log.rssiSpread(ctx.now) < 3.0 ? 1.0 : 0.7;
    // One-hop suspect: the radio actually transmitting the replies.
    alert.suspectEntities.push_back(log.dominantLinkSource(ctx.now));
    alert.detail = "echo-reply rate " + formatDouble(log.rate(ctx.now)) +
                   "/s from " +
                   std::to_string(log.distinctClaimedSources(ctx.now)) +
                   " claimed sources";
    ctx.raiseAlert(std::move(alert));
  }
}

std::size_t IcmpFloodModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& [victim, log] : replyLog_) {
    bytes += victim.size() + log.memoryBytes();
  }
  for (const auto& [k, v] : identityBinding_) bytes += k.size() + v.size();
  return bytes;
}

}  // namespace kalis::ids
