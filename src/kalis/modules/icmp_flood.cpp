#include "kalis/modules/icmp_flood.hpp"

namespace kalis::ids {

bool IcmpFloodModule::required(const KnowledgeBase& kb) const {
  return kb.local<bool>("Protocols.ICMP").value_or(false);
}

void IcmpFloodModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("detectionThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) detectionThresh_ = *v;
  }
  if (auto it = params.find("minSources"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSources_ = static_cast<std::size_t>(*v);
    }
  }
  if (auto it = params.find("windowSeconds"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) {
      window_ = static_cast<Duration>(*v * 1e6);
      replyLog_.clear();
    }
  }
}

void IcmpFloodModule::onPacket(const net::CapturedPacket& pkt,
                               const net::Dissection& dis, ModuleContext& ctx) {
  (void)ctx;
  const bool isReply = dis.type == net::PacketType::kIcmpEchoRep ||
                       dis.type == net::PacketType::kIcmpv6EchoRep;
  const bool isRequest = dis.type == net::PacketType::kIcmpEchoReq ||
                         dis.type == net::PacketType::kIcmpv6EchoReq;
  if (!isReply && !isRequest) return;

  const net::EntityRef netSrc = dis.networkSourceRef();
  const net::EntityRef netDst = dis.networkDestRef();
  if (!netSrc.valid() || !netDst.valid()) return;
  const net::EntityRef linkSrc = dis.linkSourceRef();

  // Learn the usual physical identity behind each network source; a later
  // mismatch is spoofing evidence.
  auto [it, inserted] = identityBinding_.try_emplace(netSrc, linkSrc);
  const bool spoofed = !inserted && it->second != linkSrc;

  if (isRequest && spoofed) {
    // A request claiming to come from an already-known host but transmitted
    // by a different radio: the Smurf trigger (victim = claimed source).
    spoofedRequests_[netSrc] = pkt.meta.timestamp;
    return;
  }

  if (isReply) {
    auto [log, created] = replyLog_.tryEmplace(netDst, window_);
    log->value.record(VictimEventLog::Event{pkt.meta.timestamp, netSrc,
                                            linkSrc, pkt.meta.rssiDbm,
                                            pkt.medium});
  }
}

void IcmpFloodModule::onTick(ModuleContext& ctx) {
  const bool trustKnowledge = ctx.kb.writesEnabled();
  replyLog_.forEachOrdered([&](EntityKeyedMap<VictimEventLog>::Entry& entry) {
    VictimEventLog& log = entry.value;
    if (log.rate(ctx.now) < detectionThresh_) return;
    if (log.distinctClaimedSources(ctx.now) < minSources_) return;

    // Symptom present. Consult the Knowledge Base for the topology of the
    // medium the flood rides on.
    const net::Medium medium = log.dominantMedium(ctx.now);
    const char* label = medium == net::Medium::kIeee802154
                            ? labels::kMultihopWpan
                            : labels::kMultihopWifi;
    const auto multihop = ctx.kb.local<bool>(label);

    if (trustKnowledge) {
      if (!multihop.has_value()) return;  // still learning: don't guess
      if (*multihop) {
        // Multi-hop: Smurf is possible. If we saw the Smurf trigger
        // (spoofed requests in the victim's name), leave it to SmurfModule.
        auto spoofIt = spoofedRequests_.find(entry.key);
        if (spoofIt != spoofedRequests_.end() &&
            ctx.now <= spoofIt->second + window_) {
          return;
        }
      }
    }

    if (!shouldAlert(entry.label, ctx.now, cooldown_)) return;
    Alert alert;
    alert.type = AttackType::kIcmpFlood;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = entry.label;
    alert.confidence = log.rssiSpread(ctx.now) < 3.0 ? 1.0 : 0.7;
    // One-hop suspect: the radio actually transmitting the replies.
    alert.suspectEntities.push_back(log.dominantLinkSource(ctx.now).toString());
    alert.detail = "echo-reply rate " + formatDouble(log.rate(ctx.now)) +
                   "/s from " +
                   std::to_string(log.distinctClaimedSources(ctx.now)) +
                   " claimed sources";
    ctx.raiseAlert(std::move(alert));
  });
}

std::size_t IcmpFloodModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  bytes += replyLog_.entryOverheadBytes();
  replyLog_.forEachUnordered(
      [&](const EntityKeyedMap<VictimEventLog>::Entry& e) {
        bytes += e.value.memoryBytes();
      });
  bytes += identityBinding_.size() * sizeof(net::EntityRef) * 2;
  bytes += spoofedRequests_.size() *
           (sizeof(net::EntityRef) + sizeof(SimTime));
  return bytes;
}

}  // namespace kalis::ids
