// Wormhole detection module — the collective-knowledge showcase (§VI-D).
//
// A wormhole pair (B1, B2) tunnels traffic out-of-band: B1 swallows frames
// (a blackhole symptom to the Kalis node watching it), B2 re-injects them in
// a different network portion (an unexplained traffic source to the Kalis
// node watching *it*). Neither view alone identifies the attack.
//
// Local sensing half: flag "unexplained relays" — a node transmitting NWK
// frames in the name of an origin that was never handed to it (no inbound
// copy overheard) and never heard directly. Their fingerprints are
// published as a collective knowgget (Wormhole.Unexplained@<entity>).
//
// Correlation half: match fingerprints across the Knowledge Base between
// Wormhole.Drops@B1 (published by the blackhole module, possibly on a peer
// node) and Wormhole.Unexplained@B2. An intersection is a wormhole with
// suspects {B1, B2}.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <string>

#include "kalis/module.hpp"

namespace kalis::ids {

class WormholeModule final : public DetectionModule {
 public:
  std::string name() const override { return "WormholeModule"; }
  AttackType attack() const override { return AttackType::kWormhole; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>(labels::kMultihopWpan).value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Multihop*", "Wormhole*"};
  }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 3; }
  std::size_t memoryBytes() const override;

 private:
  struct Injection {
    SimTime time;
    std::uint64_t fp;
  };

  Duration window_ = seconds(30);
  Duration cooldown_ = seconds(20);
  std::size_t minMatches_ = 2;  ///< fingerprint overlaps needed for an alert

  std::set<std::string> directSenders_;            ///< entities heard first-hand
  std::deque<std::string> inboundRecent_;          ///< "(src:seq)>receiver" keys
  std::set<std::string> inboundSet_;
  std::map<std::string, std::deque<Injection>> unexplained_;  ///< by injector
};

}  // namespace kalis::ids
