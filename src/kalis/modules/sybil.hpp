// Sybil attack detection — one physical device fabricating many identities.
//
// Fig. 3 circles Sybil: the right technique depends on the topology.
//
// Single-hop (SybilSinglehopModule): every node is in direct range, so each
// legitimate identity has a distinct RSSI fingerprint at the IDS (position +
// per-link shadowing). Several identities sharing one tight RSSI fingerprint
// expose a single radio (RSSI-based Sybil detection, paper ref [42]).
//
// Multi-hop (SybilMultihopModule): distant legitimate nodes all arrive weak
// and clustered, so RSSI grouping false-positives; instead flag bursts of
// "ghost" identities that inject data but never participate in routing
// (no beacons, no forwarding, no parent adoption).
#pragma once

#include <map>
#include <set>
#include <string>

#include "kalis/module.hpp"
#include "util/stats.hpp"

namespace kalis::ids {

class SybilSinglehopModule final : public DetectionModule {
 public:
  std::string name() const override { return "SybilSinglehopModule"; }
  AttackType attack() const override { return AttackType::kSybil; }

  bool required(const KnowledgeBase& kb) const override {
    auto mh = kb.local<bool>(labels::kMultihopWpan);
    return mh.has_value() && !*mh;
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Multihop*"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  struct IdentityState {
    Ewma rssi{0.3};
    std::size_t packets = 0;
    SimTime firstSeen = 0;
    SimTime lastSeen = 0;
  };

  double clusterEpsilonDb_ = 2.0;
  std::size_t minIdentities_ = 4;
  std::size_t minPackets_ = 3;
  Duration window_ = seconds(20);
  Duration cooldown_ = seconds(20);
  std::map<std::string, IdentityState> identities_;
};

class SybilMultihopModule final : public DetectionModule {
 public:
  std::string name() const override { return "SybilMultihopModule"; }
  AttackType attack() const override { return AttackType::kSybil; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>(labels::kMultihopWpan).value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Multihop*"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  struct IdentityState {
    SimTime firstSeen = 0;
    SimTime lastSeen = 0;
    bool routedEver = false;  ///< beaconed, relayed, or was adopted as parent
    std::size_t dataPackets = 0;
  };

  std::size_t minGhosts_ = 4;
  Duration window_ = seconds(20);
  Duration cooldown_ = seconds(20);
  std::map<std::string, IdentityState> identities_;
};

}  // namespace kalis::ids
