// ICMP Flood detection module (paper §III-A1, §VI-B1).
//
// Symptom: an unusually high rate of ICMP Echo Replies converging on one
// victim from many claimed sources. Indistinguishable, to a passive
// observer, from a Smurf attack — *unless* the network is known to be
// single-hop, in which case Smurf is impossible (the paper's flagship
// example of knowledge-driven disambiguation).
//
// Classification logic:
//  - Multihop(medium) == false  -> ICMP Flood, confidently.
//  - Multihop(medium) == true   -> only ICMP Flood if no spoofed Echo
//    Requests with the victim's source were observed (those mean Smurf).
//  - knowledge unavailable (the traditional-IDS baseline) -> alert on the
//    raw symptom, accepting the ambiguity.
//
// Suspects: the physical transmitter behind the forged identities — the
// dominant link-layer source, cross-checked by the RSSI spread being small
// (one radio), the "approximate disambiguation through signal strength
// comparison" of §VI-B1.
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "kalis/module.hpp"
#include "kalis/modules/flood_common.hpp"

namespace kalis::ids {

class IcmpFloodModule final : public DetectionModule {
 public:
  std::string name() const override { return "IcmpFloodModule"; }
  AttackType attack() const override { return AttackType::kIcmpFlood; }

  bool required(const KnowledgeBase& kb) const override;
  std::vector<std::string> watchedLabels() const override {
    return {"Protocols.ICMP"};
  }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  double detectionThresh_ = 10.0;  ///< echo replies/s at one victim
  std::size_t minSources_ = 3;     ///< distinct claimed senders
  Duration window_ = seconds(5);
  Duration cooldown_ = seconds(10);

  EntityKeyedMap<VictimEventLog> replyLog_;  ///< by victim
  std::unordered_map<net::EntityRef, SimTime> spoofedRequests_;  ///< victim
  std::unordered_map<net::EntityRef, net::EntityRef>
      identityBinding_;  ///< net src -> link src
};

}  // namespace kalis::ids
