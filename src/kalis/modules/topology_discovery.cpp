#include "kalis/modules/topology_discovery.hpp"

namespace kalis::ids {

void TopologyDiscoveryModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("settlePackets"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      settlePackets_ = static_cast<std::uint64_t>(*v);
    }
  }
}

const char* TopologyDiscoveryModule::mediumLabel(net::Medium medium) {
  switch (medium) {
    case net::Medium::kIeee802154: return labels::kMultihopWpan;
    case net::Medium::kWifi: return labels::kMultihopWifi;
    case net::Medium::kBluetooth: return "Multihop.Bluetooth";
  }
  return labels::kMultihop;
}

void TopologyDiscoveryModule::noteMultihop(net::Medium medium,
                                           ModuleContext& ctx) {
  MediumState& state = medium_[static_cast<std::size_t>(medium)];
  if (state.multihop && state.settled) return;
  state.multihop = true;
  state.settled = true;
  ctx.kb.put(mediumLabel(medium), true);
  publishGlobal(ctx);
}

void TopologyDiscoveryModule::maybeSettle(net::Medium medium,
                                          ModuleContext& ctx) {
  MediumState& state = medium_[static_cast<std::size_t>(medium)];
  if (state.settled || state.multihop) return;
  if (state.packets < settlePackets_) return;
  state.settled = true;
  ctx.kb.put(mediumLabel(medium), false);
  publishGlobal(ctx);
}

void TopologyDiscoveryModule::publishGlobal(ModuleContext& ctx) {
  bool anyTrue = false;
  bool anyUnsettled = false;
  for (const MediumState& state : medium_) {
    if (state.packets == 0) continue;  // medium not in use: irrelevant
    if (state.multihop) anyTrue = true;
    if (!state.settled) anyUnsettled = true;
  }
  if (anyTrue) {
    ctx.kb.put(labels::kMultihop, true);
  } else if (!anyUnsettled) {
    ctx.kb.put(labels::kMultihop, false);
  }
  // Otherwise: still learning; publish nothing rather than guess.
}

void TopologyDiscoveryModule::onPacket(const net::CapturedPacket& pkt,
                                       const net::Dissection& dis,
                                       ModuleContext& ctx) {
  MediumState& state = medium_[static_cast<std::size_t>(pkt.medium)];
  ++state.packets;

  const std::string sender = dis.linkSource();
  if (entities_.insert(sender).second) {
    ctx.kb.put(labels::kMonitoredNodes,
                  static_cast<long long>(entities_.size()));
  }

  if (dis.ctpData) {
    if (dis.ctpData->thl >= 1) noteMultihop(pkt.medium, ctx);
    // Same (origin, seqno) heard from two different link senders: forwarding.
    const std::uint32_t key =
        (static_cast<std::uint32_t>(dis.ctpData->origin.value) << 8) |
        dis.ctpData->seqno;
    auto [it, inserted] = originSender_.try_emplace(key, sender);
    if (!inserted && it->second != sender) noteMultihop(pkt.medium, ctx);
    if (originSender_.size() > 4096) originSender_.clear();  // bound state
  }

  if (dis.ctpBeacon) {
    // First ETX-0 advertiser wins: a sinkhole later claiming root-grade cost
    // must not overwrite established root knowledge.
    if (dis.ctpBeacon->etx == 0 && ctpRoot_.empty()) {
      ctpRoot_ = sender;
      ctx.kb.put(labels::kCtpRoot, sender);
    }
    // A beacon advertising a route of 2+ hops implies a multi-hop tree.
    if (dis.ctpBeacon->etx != 0xffff && dis.ctpBeacon->etx > 10) {
      noteMultihop(pkt.medium, ctx);
    }
  }

  if (dis.zigbee) {
    const std::string nwkSrc = net::toString(dis.zigbee->src);
    if (nwkSrc != sender) noteMultihop(pkt.medium, ctx);  // relayed frame
    // A unicast NWK frame handed to a link receiver that is not its NWK
    // destination is a routing hop in progress: the network is multi-hop
    // even if we never see the relay's retransmission.
    if (!dis.zigbee->dst.isBroadcast() && !dis.isBroadcastDest() &&
        dis.linkDest() != net::toString(dis.zigbee->dst)) {
      noteMultihop(pkt.medium, ctx);
    }
  }

  if (dis.rplDio && dis.rplDio->rank > 256) noteMultihop(pkt.medium, ctx);

  maybeSettle(pkt.medium, ctx);
}

std::size_t TopologyDiscoveryModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& e : entities_) bytes += e.size() + 16;
  bytes += originSender_.size() * 48;
  return bytes;
}

}  // namespace kalis::ids
