// Replication (node clone) attack detection — the paper's §VI-B2 scenario.
//
// "Many detection techniques exist for this attack; however each one is
// specific to a network with certain characteristics, e.g. mobility [25]."
// Accordingly there are two modules; the Knowledge Base's Mobility knowgget
// (from the Mobility Awareness sensing module, or static configuration)
// selects which one runs. Loading the wrong one misses attacks — exactly
// the failure mode the traditional-IDS baseline exhibits in the paper.
//
// Static networks (ReplicationStaticModule): each node's RSSI at the IDS is
// stationary, so one identity showing a *bimodal* RSSI distribution (two
// tight clusters far apart) reveals two physical transmitters. Mobile nodes
// smear the distribution and break this technique.
//
// Mobile networks (ReplicationMobileModule): positions change, so RSSI
// clustering is useless; instead, two transmissions under one identity
// almost simultaneously but with wildly different RSSI imply a physically
// impossible movement speed. Legitimate mobility is bounded (~1.5 m/s), so
// the implied path-loss change over a sub-second gap stays small.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "kalis/module.hpp"

namespace kalis::ids {

class ReplicationStaticModule final : public DetectionModule {
 public:
  std::string name() const override { return "ReplicationStaticModule"; }
  AttackType attack() const override { return AttackType::kReplication; }

  bool required(const KnowledgeBase& kb) const override {
    // Requires the network to be known static.
    auto mobility = kb.local<bool>(labels::kMobility);
    return mobility.has_value() && !*mobility;
  }
  std::vector<std::string> watchedLabels() const override {
    return {labels::kMobility};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  struct Sample {
    SimTime time;
    double rssi;
  };

  double clusterGapDb_ = 8.0;   ///< separation identifying two transmitters
  double clusterTightDb_ = 3.0; ///< max spread within each cluster
  std::size_t minPerCluster_ = 3;
  Duration window_ = seconds(20);
  Duration cooldown_ = seconds(15);
  std::map<std::string, std::deque<Sample>> samples_;  ///< by entity
};

class ReplicationMobileModule final : public DetectionModule {
 public:
  std::string name() const override { return "ReplicationMobileModule"; }
  AttackType attack() const override { return AttackType::kReplication; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>(labels::kMobility).value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {labels::kMobility};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  struct LastSeen {
    SimTime time = 0;
    double rssi = 0.0;
    bool valid = false;
  };

  Duration maxGap_ = milliseconds(1000);  ///< "simultaneous" capture window
  double impossibleDeltaDb_ = 14.0;       ///< RSSI jump no bounded speed allows
  std::size_t minEvents_ = 2;
  Duration window_ = seconds(20);
  Duration cooldown_ = seconds(15);
  std::map<std::string, LastSeen> lastSeen_;
  std::map<std::string, std::deque<SimTime>> events_;  ///< impossible moves
};

}  // namespace kalis::ids
