// WiFi deauthentication-flood detection: forged 802.11 deauth frames kicking
// stations off the access point (a Denial-of-Thing against WiFi devices,
// Table I's hub->sub / Internet->hub patterns).
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "kalis/entity_map.hpp"
#include "kalis/module.hpp"
#include "util/sliding_window.hpp"

namespace kalis::ids {

class DeauthFloodModule final : public DetectionModule {
 public:
  std::string name() const override { return "DeauthFloodModule"; }
  AttackType attack() const override { return AttackType::kDeauthFlood; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>("Protocols.WiFi").value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Protocols.WiFi"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::size_t memoryBytes() const override {
    std::size_t bytes = sizeof(*this) + alertStateBytes();
    bytes += deauths_.entryOverheadBytes();
    deauths_.forEachUnordered(
        [&](const EntityKeyedMap<SlidingCounter>::Entry& e) {
          bytes += e.value.memoryBytes() + 32;
        });
    bytes += lastLinkSender_.size() * sizeof(net::EntityRef) * 2;
    return bytes;
  }

 private:
  double rateThresh_ = 2.0;  ///< deauths/s per victim (legit: ~never)
  Duration window_ = seconds(5);
  Duration cooldown_ = seconds(15);
  EntityKeyedMap<SlidingCounter> deauths_;  ///< by victim
  std::unordered_map<net::EntityRef, net::EntityRef>
      lastLinkSender_;  ///< victim -> sender
};

}  // namespace kalis::ids
