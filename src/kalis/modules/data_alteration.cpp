#include "kalis/modules/data_alteration.hpp"

namespace kalis::ids {

void DataAlterationModule::onPacket(const net::CapturedPacket& pkt,
                                    const net::Dissection& dis,
                                    ModuleContext& ctx) {
  watchdog_.observe(pkt, dis, ctx.kb.local(labels::kCtpRoot).value_or(""));
  watchdog_.expire(ctx.now);
}

void DataAlterationModule::onTick(ModuleContext& ctx) {
  watchdog_.expire(ctx.now);
  for (const auto& event : watchdog_.drainAlterations()) {
    if (!shouldAlert(event.entity, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kDataAlteration;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = event.originEntity;
    alert.suspectEntities.push_back(event.entity);
    alert.detail = "forwarded payload hash mismatch";
    ctx.raiseAlert(std::move(alert));
  }
}

}  // namespace kalis::ids
