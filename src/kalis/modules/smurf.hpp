// Smurf attack detection module (paper §III-A1).
//
// In a Smurf attack the attacker sends ICMP Echo Requests to the victim's
// neighbors with the victim's identity as source; the neighbors' replies
// converge on the victim. The observable symptom (a storm of Echo Replies at
// the victim) is identical to an ICMP flood — but the attack requires a
// multi-hop network, so Kalis only activates this module when the Knowledge
// Base says Multihop == true.
//
// Detection: the reply storm plus direct evidence of the trigger — Echo
// Requests claiming the victim's source but transmitted by a different
// radio. Suspects are those spoofing transmitters.
//
// Fallback without knowledge (the traditional-IDS baseline): the module
// alerts on the bare reply-storm symptom, and, lacking the trigger evidence,
// names as suspects the nodes two hops away from the victim in its observed
// adjacency — which, on a single-hop network, degenerates to the victim
// itself (the countermeasure disaster reported in §VI-B1).
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "kalis/module.hpp"
#include "kalis/modules/flood_common.hpp"

namespace kalis::ids {

class SmurfModule final : public DetectionModule {
 public:
  std::string name() const override { return "SmurfModule"; }
  AttackType attack() const override { return AttackType::kSmurf; }

  bool required(const KnowledgeBase& kb) const override;
  std::vector<std::string> watchedLabels() const override {
    return {"Protocols.ICMP", "Multihop*"};
  }

  void configure(const std::map<std::string, std::string>& params) override;

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  /// Suspect fallback used without trigger evidence: entities exactly two
  /// hops from the victim in the observed communication graph. Exposed for
  /// tests (it is the mechanism behind the paper's revoke-the-victim story).
  std::vector<std::string> twoHopSuspects(const std::string& victim) const;

  std::uint32_t workUnitsPerPacket() const override { return 2; }
  std::size_t memoryBytes() const override;

 private:
  std::vector<std::string> twoHopSuspects(const net::EntityRef& victim,
                                          const std::string& victimLabel) const;

  double detectionThresh_ = 10.0;
  std::size_t minSources_ = 3;
  Duration window_ = seconds(5);
  Duration cooldown_ = seconds(10);

  EntityKeyedMap<VictimEventLog> replyLog_;  ///< by victim (net addr)
  struct SpoofEvidence {
    SimTime lastSeen = 0;
    std::set<net::EntityRef> spoofers;  ///< link srcs in victim's name
  };
  std::unordered_map<net::EntityRef, SpoofEvidence> spoofed_;  ///< by victim
  std::unordered_map<net::EntityRef, net::EntityRef> identityBinding_;
  // Observed adjacency over network addresses (for the fallback suspects).
  std::map<net::EntityRef, std::set<net::EntityRef>> adjacency_;
};

}  // namespace kalis::ids
