#include "kalis/modules/wormhole.hpp"

#include <sstream>

#include "kalis/modules/forwarding_watchdog.hpp"

namespace kalis::ids {

namespace {

std::string inboundKey(std::uint16_t src, std::uint8_t seq,
                       const std::string& receiver) {
  return std::to_string(src) + ":" + std::to_string(seq) + ">" + receiver;
}

std::set<std::uint64_t> parseFpCsv(const std::string& csv) {
  std::set<std::uint64_t> out;
  for (const std::string& part : split(csv, ',')) {
    if (part.empty()) continue;
    out.insert(std::stoull(part, nullptr, 16));
  }
  return out;
}

}  // namespace

void WormholeModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("minMatches"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minMatches_ = static_cast<std::size_t>(*v);
    }
  }
}

void WormholeModule::onPacket(const net::CapturedPacket& pkt,
                              const net::Dissection& dis, ModuleContext& ctx) {
  (void)ctx;
  if (!dis.zigbee || !dis.wpan) return;
  const net::ZigbeeNwkFrameView& nwk = *dis.zigbee;
  const std::string sender = dis.linkSource();
  const std::string receiver = dis.linkDest();
  const std::string nwkSrc = net::toString(nwk.src);
  directSenders_.insert(sender);

  // Remember what was legitimately handed to whom.
  if (!dis.wpan->dst.isBroadcast()) {
    const std::string key = inboundKey(nwk.src.value, nwk.seq, receiver);
    if (inboundSet_.insert(key).second) {
      inboundRecent_.push_back(key);
      while (inboundRecent_.size() > 8192) {
        inboundSet_.erase(inboundRecent_.front());
        inboundRecent_.pop_front();
      }
    }
  }

  // Unexplained relay: `sender` transmits in the name of an origin it was
  // never handed a frame from, and which we never heard transmit itself.
  if (nwkSrc != sender && !directSenders_.contains(nwkSrc)) {
    const std::string key = inboundKey(nwk.src.value, nwk.seq, sender);
    if (!inboundSet_.contains(key)) {
      auto& queue = unexplained_[sender];
      queue.push_back(Injection{
          pkt.meta.timestamp,
          ForwardingWatchdog::fingerprint(nwk.src.value, nwk.seq,
                                          BytesView(nwk.payload))});
      const SimTime cutoff =
          pkt.meta.timestamp > window_ ? pkt.meta.timestamp - window_ : 0;
      while (!queue.empty() && queue.front().time <= cutoff) queue.pop_front();
    }
  }
}

void WormholeModule::onTick(ModuleContext& ctx) {
  // Publish local unexplained-injection evidence (collective).
  for (auto& [entity, queue] : unexplained_) {
    const SimTime cutoff = ctx.now > window_ ? ctx.now - window_ : 0;
    while (!queue.empty() && queue.front().time <= cutoff) queue.pop_front();
    if (queue.empty()) continue;
    std::ostringstream csv;
    std::size_t i = 0;
    for (const Injection& inj : queue) {
      if (i++ >= 64) break;
      if (i > 1) csv << ",";
      csv << std::hex << inj.fp;
    }
    ctx.kb.put(labels::kWormholeUnexplained, csv.str(), entity,
               /*collective=*/true);
  }

  // Correlate drop evidence against injection evidence across all creators
  // present in the Knowledge Base (local and peers').
  const auto drops = ctx.kb.byLabel(labels::kWormholeDrops);
  const auto injections = ctx.kb.byLabel(labels::kWormholeUnexplained);
  for (const Knowgget& drop : drops) {
    const auto dropFps = parseFpCsv(drop.value);
    if (dropFps.empty()) continue;
    for (const Knowgget& inj : injections) {
      if (inj.entity == drop.entity) continue;
      const auto injFps = parseFpCsv(inj.value);
      std::size_t matches = 0;
      for (std::uint64_t fp : injFps) {
        if (dropFps.contains(fp)) ++matches;
      }
      if (matches < minMatches_) continue;
      const std::string pairKey = drop.entity + "|" + inj.entity;
      if (!shouldAlert(pairKey, ctx.now, cooldown_)) continue;
      Alert alert;
      alert.type = AttackType::kWormhole;
      alert.time = ctx.now;
      alert.moduleName = name();
      alert.suspectEntities = {drop.entity, inj.entity};
      alert.detail = std::to_string(matches) +
                     " tunneled packets matched between " + drop.creator +
                     " and " + inj.creator;
      ctx.raiseAlert(std::move(alert));
    }
  }
}

std::size_t WormholeModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& s : directSenders_) bytes += s.size() + 16;
  for (const auto& k : inboundRecent_) bytes += k.size() * 2 + 32;
  for (const auto& [entity, queue] : unexplained_) {
    bytes += entity.size() + queue.size() * sizeof(Injection) + 32;
  }
  return bytes;
}

}  // namespace kalis::ids
