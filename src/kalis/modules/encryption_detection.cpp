#include "kalis/modules/encryption_detection.hpp"

#include "util/stats.hpp"

namespace kalis::ids {

void EncryptionDetectionModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("entropyThreshold"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) entropyThreshold_ = *v;
  }
  if (auto it = params.find("minPayload"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minPayload_ = static_cast<std::size_t>(*v);
    }
  }
}

void EncryptionDetectionModule::onPacket(const net::CapturedPacket& pkt,
                                         const net::Dissection& dis,
                                         ModuleContext& ctx) {
  bool linkSecured = false;
  if (dis.wpan &&
      (dis.wpan->securityEnabled || (dis.zigbee && dis.zigbee->securityEnabled))) {
    linkSecured = true;
    if (!wpanPublished_) {
      wpanPublished_ = true;
      ctx.kb.put(std::string(labels::kLinkEncryption) + ".P802154", true);
    }
  }
  if (dis.wifi && dis.wifi->protectedFrame) {
    linkSecured = true;
    if (!wifiPublished_) {
      wifiPublished_ = true;
      ctx.kb.put(std::string(labels::kLinkEncryption) + ".WiFi", true);
    }
  }

  bool payloadOpaque = false;
  if (dis.appPayload.size() >= minPayload_ &&
      byteEntropy(BytesView(dis.appPayload)) >= entropyThreshold_) {
    payloadOpaque = true;
  }

  if (linkSecured || payloadOpaque) {
    const std::string entity = dis.linkSource();
    if (entity != "?" && !entityEncrypted_[entity]) {
      entityEncrypted_[entity] = true;
      ctx.kb.put("Encrypted", true, entity);
    }
  }
  (void)pkt;
}

}  // namespace kalis::ids
