#include "kalis/modules/traffic_stats.hpp"

namespace kalis::ids {

TrafficStatsModule::TrafficStatsModule() {
  for (auto& counter : global_) {
    counter = std::make_unique<SlidingCounter>(window_);
  }
}

void TrafficStatsModule::configure(
    const std::map<std::string, std::string>& params) {
  if (auto it = params.find("windowSeconds"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) {
      window_ = static_cast<Duration>(*v * 1e6);
      for (auto& counter : global_) {
        counter = std::make_unique<SlidingCounter>(window_);
      }
      for (auto& m : perDevice_) m.clear();
    }
  }
}

const char* TrafficStatsModule::protocolOf(const net::Dissection& dis) {
  using net::PacketType;
  switch (dis.type) {
    case PacketType::kTcpSyn:
    case PacketType::kTcpSynAck:
    case PacketType::kTcpAck:
    case PacketType::kTcpRst:
    case PacketType::kTcpFin:
    case PacketType::kTcpData:
      return "TCP";
    case PacketType::kUdp:
      return "UDP";
    case PacketType::kIcmpEchoReq:
    case PacketType::kIcmpEchoRep:
    case PacketType::kIcmpOther:
    case PacketType::kIcmpv6EchoReq:
    case PacketType::kIcmpv6EchoRep:
      return "ICMP";
    case PacketType::kCtpData:
    case PacketType::kCtpRouting:
      return "CTP";
    case PacketType::kZigbeeData:
    case PacketType::kZigbeeRouting:
      return "ZigBee";
    case PacketType::kRplDio:
    case PacketType::kRplDao:
      return "RPL";
    case PacketType::kWifiBeacon:
    case PacketType::kWifiProbe:
    case PacketType::kWifiDeauth:
      return "WiFi";
    case PacketType::kBleAdv:
    case PacketType::kBleScan:
      return "BLE";
    default:
      return nullptr;
  }
}

void TrafficStatsModule::onPacket(const net::CapturedPacket& pkt,
                                  const net::Dissection& dis,
                                  ModuleContext& ctx) {
  (void)pkt;
  lastNow_ = ctx.now;
  const auto typeIdx = static_cast<std::size_t>(dis.type);
  global_[typeIdx]->record(ctx.now);

  // Per-device accounting against the traffic's *target* — the entity a
  // DoS-style attack would be aimed at. Allocation-free on the hit path.
  net::EntityRef target = dis.networkDestRef();
  if (!target.valid()) target = dis.linkDestRef();
  auto [entry, inserted] = perDevice_[typeIdx].tryEmplace(target, window_);
  entry->value.record(ctx.now);

  if (const char* proto = protocolOf(dis)) {
    if (!protocolsSeen_[proto]) {
      protocolsSeen_[proto] = true;
      ctx.kb.put(std::string(labels::kProtocols) + "." + proto, true);
    }
  }
}

void TrafficStatsModule::onTick(ModuleContext& ctx) {
  lastNow_ = ctx.now;
  for (std::size_t i = 0; i < global_.size(); ++i) {
    const double rate = global_[i]->rate(ctx.now);
    if (rate > 0.0) {
      ctx.kb.put(std::string(labels::kTrafficFrequency) + "." +
                     net::packetTypeName(static_cast<net::PacketType>(i)),
                 rate);
    }
  }
  for (std::size_t i = 0; i < perDevice_.size(); ++i) {
    perDevice_[i].forEachOrdered(
        [&](EntityKeyedMap<SlidingCounter>::Entry& entry) {
          const double rate = entry.value.rate(ctx.now);
          if (rate > 0.0) {
            ctx.kb.put(std::string(labels::kTrafficFrequency) + "." +
                           net::packetTypeName(static_cast<net::PacketType>(i)),
                       rate, entry.label);
          }
        });
  }
}

double TrafficStatsModule::globalRate(net::PacketType type, SimTime now) {
  return global_[static_cast<std::size_t>(type)]->rate(now);
}

double TrafficStatsModule::deviceRate(net::PacketType type,
                                      const std::string& entity, SimTime now) {
  auto* entry = const_cast<EntityKeyedMap<SlidingCounter>::Entry*>(
      perDevice_[static_cast<std::size_t>(type)].findByLabel(entity));
  if (!entry) return 0.0;
  return entry->value.rate(now);
}

std::size_t TrafficStatsModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& counter : global_) bytes += counter->memoryBytes();
  for (const auto& m : perDevice_) {
    bytes += m.entryOverheadBytes();
    m.forEachUnordered([&](const EntityKeyedMap<SlidingCounter>::Entry& e) {
      bytes += e.value.memoryBytes() + 32;
    });
  }
  return bytes;
}

}  // namespace kalis::ids
