// Data alteration detection module.
//
// Watchdog technique: compare a relay's retransmission against the copy we
// overheard being handed to it; a payload mismatch is tampering. Fig. 3
// marks this attack impossible when cryptographic integrity protection is
// deployed — so the module deactivates when the Knowledge Base reports
// link-layer encryption on the monitored WPAN.
#pragma once

#include <map>
#include <string>

#include "kalis/module.hpp"
#include "kalis/modules/forwarding_watchdog.hpp"

namespace kalis::ids {

class DataAlterationModule final : public DetectionModule {
 public:
  std::string name() const override { return "DataAlterationModule"; }
  AttackType attack() const override { return AttackType::kDataAlteration; }

  bool required(const KnowledgeBase& kb) const override {
    if (!kb.local<bool>(labels::kMultihopWpan).value_or(false)) return false;
    // Crypto rules the attack out entirely.
    if (kb.local<bool>(std::string(labels::kLinkEncryption) + ".P802154")
            .value_or(false)) {
      return false;
    }
    return true;
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Multihop*", "LinkEncryption*"};
  }

  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 3; }
  std::size_t memoryBytes() const override {
    return sizeof(*this) + watchdog_.memoryBytes() + alertStateBytes();
  }

 private:
  Duration cooldown_ = seconds(15);
  ForwardingWatchdog watchdog_;
};

}  // namespace kalis::ids
