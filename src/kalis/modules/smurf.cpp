#include "kalis/modules/smurf.hpp"

namespace kalis::ids {

bool SmurfModule::required(const KnowledgeBase& kb) const {
  if (!kb.local<bool>("Protocols.ICMP").value_or(false)) return false;
  // Smurf is impossible on single-hop networks: activate only when some
  // monitored medium is known multi-hop.
  return kb.local<bool>(labels::kMultihopWpan).value_or(false) ||
         kb.local<bool>(labels::kMultihopWifi).value_or(false);
}

void SmurfModule::configure(const std::map<std::string, std::string>& params) {
  if (auto it = params.find("detectionThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) detectionThresh_ = *v;
  }
  if (auto it = params.find("minSources"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSources_ = static_cast<std::size_t>(*v);
    }
  }
}

void SmurfModule::onPacket(const net::CapturedPacket& pkt,
                           const net::Dissection& dis, ModuleContext& ctx) {
  (void)ctx;
  const auto netSrc = dis.networkSource();
  const auto netDst = dis.networkDest();
  const bool isReply = dis.type == net::PacketType::kIcmpEchoRep ||
                       dis.type == net::PacketType::kIcmpv6EchoRep;
  const bool isRequest = dis.type == net::PacketType::kIcmpEchoReq ||
                         dis.type == net::PacketType::kIcmpv6EchoReq;
  if (!isReply && !isRequest) return;
  if (!netSrc || !netDst) return;

  // The suspect heuristic reasons over the echo-traffic graph only: Smurf
  // amplification travels along ICMP paths, not arbitrary application flows.
  adjacency_[*netSrc].insert(*netDst);
  adjacency_[*netDst].insert(*netSrc);
  if (adjacency_.size() > 1024) adjacency_.clear();  // bound state
  const std::string linkSrc = dis.linkSource();

  auto [bind, inserted] = identityBinding_.try_emplace(*netSrc, linkSrc);
  const bool spoofedSource = !inserted && bind->second != linkSrc;

  if (isRequest && spoofedSource) {
    SpoofEvidence& ev = spoofed_[*netSrc];  // victim = the forged source
    ev.lastSeen = pkt.meta.timestamp;
    ev.spoofers.insert(linkSrc);
    return;
  }

  if (isReply) {
    auto [log, created] = replyLog_.try_emplace(*netDst, window_);
    log->second.record(VictimEventLog::Event{pkt.meta.timestamp, *netSrc,
                                             linkSrc, pkt.meta.rssiDbm,
                                             pkt.medium});
  }
}

std::vector<std::string> SmurfModule::twoHopSuspects(
    const std::string& victim) const {
  std::vector<std::string> result;
  auto it = adjacency_.find(victim);
  if (it == adjacency_.end()) return result;
  const std::set<std::string>& oneHop = it->second;
  std::set<std::string> twoHop;
  for (const std::string& n : oneHop) {
    auto nIt = adjacency_.find(n);
    if (nIt == adjacency_.end()) continue;
    for (const std::string& nn : nIt->second) {
      if (nn != victim && !oneHop.contains(nn)) twoHop.insert(nn);
    }
  }
  // The paper's "simplistic graph exploration": on a star topology the only
  // node reachable in exactly two link traversals is the victim itself.
  if (twoHop.empty()) twoHop.insert(victim);
  result.assign(twoHop.begin(), twoHop.end());
  return result;
}

void SmurfModule::onTick(ModuleContext& ctx) {
  const bool trustKnowledge = ctx.kb.writesEnabled();
  for (auto& [victim, log] : replyLog_) {
    if (log.rate(ctx.now) < detectionThresh_) continue;
    if (log.distinctClaimedSources(ctx.now) < minSources_) continue;

    auto spoofIt = spoofed_.find(victim);
    const bool haveTrigger = spoofIt != spoofed_.end() &&
                             ctx.now <= spoofIt->second.lastSeen + window_;

    if (trustKnowledge && !haveTrigger) {
      // With knowledge available, a reply storm without the spoofed-request
      // trigger is an ICMP flood, not a Smurf: stay silent.
      continue;
    }

    if (!shouldAlert(victim, ctx.now, cooldown_)) continue;
    Alert alert;
    alert.type = AttackType::kSmurf;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = victim;
    if (haveTrigger) {
      alert.suspectEntities.assign(spoofIt->second.spoofers.begin(),
                                   spoofIt->second.spoofers.end());
      alert.confidence = 1.0;
      alert.detail = "reply storm with spoofed echo-request trigger";
    } else {
      alert.suspectEntities = twoHopSuspects(victim);
      alert.confidence = 0.5;
      alert.detail = "reply storm (no trigger observed; 2-hop heuristic)";
    }
    ctx.raiseAlert(std::move(alert));
  }
}

std::size_t SmurfModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  for (const auto& [victim, log] : replyLog_) {
    bytes += victim.size() + log.memoryBytes();
  }
  for (const auto& [k, v] : adjacency_) {
    bytes += k.size() + 32;
    for (const auto& n : v) bytes += n.size() + 16;
  }
  return bytes;
}

}  // namespace kalis::ids
