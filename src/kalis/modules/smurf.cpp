#include "kalis/modules/smurf.hpp"

#include <algorithm>

namespace kalis::ids {

bool SmurfModule::required(const KnowledgeBase& kb) const {
  if (!kb.local<bool>("Protocols.ICMP").value_or(false)) return false;
  // Smurf is impossible on single-hop networks: activate only when some
  // monitored medium is known multi-hop.
  return kb.local<bool>(labels::kMultihopWpan).value_or(false) ||
         kb.local<bool>(labels::kMultihopWifi).value_or(false);
}

void SmurfModule::configure(const std::map<std::string, std::string>& params) {
  if (auto it = params.find("detectionThresh"); it != params.end()) {
    if (auto v = parseDouble(it->second); v && *v > 0) detectionThresh_ = *v;
  }
  if (auto it = params.find("minSources"); it != params.end()) {
    if (auto v = parseInt(it->second); v && *v > 0) {
      minSources_ = static_cast<std::size_t>(*v);
    }
  }
}

void SmurfModule::onPacket(const net::CapturedPacket& pkt,
                           const net::Dissection& dis, ModuleContext& ctx) {
  (void)ctx;
  const bool isReply = dis.type == net::PacketType::kIcmpEchoRep ||
                       dis.type == net::PacketType::kIcmpv6EchoRep;
  const bool isRequest = dis.type == net::PacketType::kIcmpEchoReq ||
                         dis.type == net::PacketType::kIcmpv6EchoReq;
  if (!isReply && !isRequest) return;
  const net::EntityRef netSrc = dis.networkSourceRef();
  const net::EntityRef netDst = dis.networkDestRef();
  if (!netSrc.valid() || !netDst.valid()) return;

  // The suspect heuristic reasons over the echo-traffic graph only: Smurf
  // amplification travels along ICMP paths, not arbitrary application flows.
  adjacency_[netSrc].insert(netDst);
  adjacency_[netDst].insert(netSrc);
  if (adjacency_.size() > 1024) adjacency_.clear();  // bound state
  const net::EntityRef linkSrc = dis.linkSourceRef();

  auto [bind, inserted] = identityBinding_.try_emplace(netSrc, linkSrc);
  const bool spoofedSource = !inserted && bind->second != linkSrc;

  if (isRequest && spoofedSource) {
    SpoofEvidence& ev = spoofed_[netSrc];  // victim = the forged source
    ev.lastSeen = pkt.meta.timestamp;
    ev.spoofers.insert(linkSrc);
    return;
  }

  if (isReply) {
    auto [log, created] = replyLog_.tryEmplace(netDst, window_);
    log->value.record(VictimEventLog::Event{pkt.meta.timestamp, netSrc,
                                            linkSrc, pkt.meta.rssiDbm,
                                            pkt.medium});
  }
}

std::vector<std::string> SmurfModule::twoHopSuspects(
    const net::EntityRef& victim, const std::string& victimLabel) const {
  std::vector<std::string> result;
  auto it = adjacency_.find(victim);
  if (it == adjacency_.end()) return result;
  const std::set<net::EntityRef>& oneHop = it->second;
  std::set<net::EntityRef> twoHop;
  for (const net::EntityRef& n : oneHop) {
    auto nIt = adjacency_.find(n);
    if (nIt == adjacency_.end()) continue;
    for (const net::EntityRef& nn : nIt->second) {
      if (nn != victim && !oneHop.contains(nn)) twoHop.insert(nn);
    }
  }
  // The paper's "simplistic graph exploration": on a star topology the only
  // node reachable in exactly two link traversals is the victim itself.
  if (twoHop.empty()) return {victimLabel};
  // String-sorted, matching the legacy std::set<std::string> order.
  return sortedLabels(twoHop);
}

std::vector<std::string> SmurfModule::twoHopSuspects(
    const std::string& victim) const {
  // Test/introspection entry point addressing the victim by string; the
  // detection path uses the EntityRef overload directly.
  for (const auto& [entity, neighbors] : adjacency_) {
    if (entity.toString() == victim) return twoHopSuspects(entity, victim);
  }
  return {};
}

void SmurfModule::onTick(ModuleContext& ctx) {
  const bool trustKnowledge = ctx.kb.writesEnabled();
  replyLog_.forEachOrdered([&](EntityKeyedMap<VictimEventLog>::Entry& entry) {
    VictimEventLog& log = entry.value;
    if (log.rate(ctx.now) < detectionThresh_) return;
    if (log.distinctClaimedSources(ctx.now) < minSources_) return;

    auto spoofIt = spoofed_.find(entry.key);
    const bool haveTrigger = spoofIt != spoofed_.end() &&
                             ctx.now <= spoofIt->second.lastSeen + window_;

    if (trustKnowledge && !haveTrigger) {
      // With knowledge available, a reply storm without the spoofed-request
      // trigger is an ICMP flood, not a Smurf: stay silent.
      return;
    }

    if (!shouldAlert(entry.label, ctx.now, cooldown_)) return;
    Alert alert;
    alert.type = AttackType::kSmurf;
    alert.time = ctx.now;
    alert.moduleName = name();
    alert.victimEntity = entry.label;
    if (haveTrigger) {
      alert.suspectEntities = sortedLabels(spoofIt->second.spoofers);
      alert.confidence = 1.0;
      alert.detail = "reply storm with spoofed echo-request trigger";
    } else {
      alert.suspectEntities = twoHopSuspects(entry.key, entry.label);
      alert.confidence = 0.5;
      alert.detail = "reply storm (no trigger observed; 2-hop heuristic)";
    }
    ctx.raiseAlert(std::move(alert));
  });
}

std::size_t SmurfModule::memoryBytes() const {
  std::size_t bytes = sizeof(*this) + alertStateBytes();
  bytes += replyLog_.entryOverheadBytes();
  replyLog_.forEachUnordered(
      [&](const EntityKeyedMap<VictimEventLog>::Entry& e) {
        bytes += e.value.memoryBytes();
      });
  for (const auto& [k, v] : adjacency_) {
    bytes += sizeof(k) + 32 + v.size() * (sizeof(net::EntityRef) + 16);
  }
  return bytes;
}

}  // namespace kalis::ids
