// Selective forwarding and blackhole detection modules (paper §IV-B4 names
// them as the canonical pair of attacks with similar symptoms but different
// severity: a blackhole drops everything, selective forwarding drops a
// fraction to stay stealthy).
//
// Both run the forwarding watchdog over overheard multi-hop traffic and
// classify relays by their windowed drop ratio:
//     selective forwarding:  lowThresh <= ratio < highThresh
//     blackhole:             ratio >= highThresh
//
// Blackhole additionally publishes the dropped packets' fingerprints as a
// collective knowgget (Wormhole.Drops@<entity>) — the evidence a peer Kalis
// node needs to upgrade the diagnosis to a wormhole (§VI-D).
#pragma once

#include <map>
#include <string>

#include "kalis/module.hpp"
#include "kalis/modules/forwarding_watchdog.hpp"

namespace kalis::ids {

class SelectiveForwardingModule final : public DetectionModule {
 public:
  std::string name() const override { return "SelectiveForwardingModule"; }
  AttackType attack() const override {
    return AttackType::kSelectiveForwarding;
  }

  bool required(const KnowledgeBase& kb) const override {
    // Impossible on single-hop networks (Fig. 3).
    return kb.local<bool>(labels::kMultihopWpan).value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Multihop*"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 3; }
  std::size_t memoryBytes() const override {
    return sizeof(*this) + watchdog_.memoryBytes() + alertStateBytes();
  }

 private:
  double lowThresh_ = 0.15;
  double highThresh_ = 0.85;
  std::size_t minSamples_ = 5;
  Duration cooldown_ = seconds(15);
  ForwardingWatchdog watchdog_;
};

class BlackholeModule final : public DetectionModule {
 public:
  std::string name() const override { return "BlackholeModule"; }
  AttackType attack() const override { return AttackType::kBlackhole; }

  bool required(const KnowledgeBase& kb) const override {
    return kb.local<bool>(labels::kMultihopWpan).value_or(false);
  }
  std::vector<std::string> watchedLabels() const override {
    return {"Multihop*"};
  }

  void configure(const std::map<std::string, std::string>& params) override;
  void onPacket(const net::CapturedPacket& pkt, const net::Dissection& dis,
                ModuleContext& ctx) override;
  void onTick(ModuleContext& ctx) override;

  std::uint32_t workUnitsPerPacket() const override { return 3; }
  std::size_t memoryBytes() const override {
    return sizeof(*this) + watchdog_.memoryBytes() + alertStateBytes();
  }

 private:
  double highThresh_ = 0.85;
  std::size_t minSamples_ = 5;
  Duration cooldown_ = seconds(15);
  ForwardingWatchdog watchdog_;
};

}  // namespace kalis::ids
