#include "kalis/config.hpp"

#include <cctype>
#include <sstream>

#include "util/strings.hpp"

namespace kalis::ids {

namespace {

enum class TokKind { kIdent, kEquals, kLbrace, kRbrace, kLparen, kRparen, kComma, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skipWhitespaceAndComments();
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, "", line_};
    const char c = text_[pos_];
    switch (c) {
      case '=': ++pos_; return Token{TokKind::kEquals, "=", line_};
      case '{': ++pos_; return Token{TokKind::kLbrace, "{", line_};
      case '}': ++pos_; return Token{TokKind::kRbrace, "}", line_};
      case '(': ++pos_; return Token{TokKind::kLparen, "(", line_};
      case ')': ++pos_; return Token{TokKind::kRparen, ")", line_};
      case ',': ++pos_; return Token{TokKind::kComma, ",", line_};
      default: break;
    }
    // Identifier / value atom: everything up to a structural character.
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !isStructural(text_[pos_]) &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      ++pos_;  // skip the offending character; caller reports the error
      return Token{TokKind::kIdent, std::string(1, c), line_};
    }
    return Token{TokKind::kIdent, std::string(text_.substr(start, pos_ - start)),
                 line_};
  }

 private:
  static bool isStructural(char c) {
    return c == '=' || c == '{' || c == '}' || c == '(' || c == ')' || c == ',' ||
           c == '#';
  }

  void skipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  ConfigParseResult parse() {
    ConfigParseResult result;
    while (cur_.kind != TokKind::kEnd) {
      if (cur_.kind != TokKind::kIdent) return fail("expected section name");
      if (cur_.text == "modules") {
        if (!parseModules(result.config)) return fail(error_);
      } else if (cur_.text == "knowggets") {
        if (!parseKnowggets(result.config)) return fail(error_);
      } else {
        return fail("unknown section '" + cur_.text + "'");
      }
    }
    result.ok = true;
    return result;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  bool expect(TokKind kind, const char* what) {
    if (cur_.kind != kind) {
      error_ = std::string("expected ") + what + ", got '" + cur_.text + "'";
      return false;
    }
    advance();
    return true;
  }

  ConfigParseResult fail(const std::string& message) {
    ConfigParseResult result;
    result.ok = false;
    result.error = "line " + std::to_string(cur_.line) + ": " + message;
    result.errorLine = cur_.line;
    return result;
  }

  bool parseModules(KalisConfig& config) {
    advance();  // "modules"
    if (!expect(TokKind::kEquals, "'='")) return false;
    if (!expect(TokKind::kLbrace, "'{'")) return false;
    if (cur_.kind == TokKind::kRbrace) {  // empty list
      advance();
      return true;
    }
    for (;;) {
      if (cur_.kind != TokKind::kIdent) {
        error_ = "expected module name";
        return false;
      }
      ModuleSpec spec;
      spec.name = cur_.text;
      advance();
      if (cur_.kind == TokKind::kLparen) {
        advance();
        if (cur_.kind != TokKind::kRparen) {
          for (;;) {
            std::string key, value;
            if (!parseKeyValue(key, value)) return false;
            spec.params[key] = value;
            if (cur_.kind == TokKind::kComma) {
              advance();
              continue;
            }
            break;
          }
        }
        if (!expect(TokKind::kRparen, "')'")) return false;
      }
      config.modules.push_back(std::move(spec));
      if (cur_.kind == TokKind::kComma) {
        advance();
        continue;
      }
      break;
    }
    return expect(TokKind::kRbrace, "'}'");
  }

  bool parseKnowggets(KalisConfig& config) {
    advance();  // "knowggets"
    if (!expect(TokKind::kEquals, "'='")) return false;
    if (!expect(TokKind::kLbrace, "'{'")) return false;
    if (cur_.kind == TokKind::kRbrace) {
      advance();
      return true;
    }
    for (;;) {
      std::string key, value;
      if (!parseKeyValue(key, value)) return false;
      StaticKnowgget k;
      const std::size_t at = key.rfind('@');
      if (at != std::string::npos) {
        k.label = key.substr(0, at);
        k.entity = key.substr(at + 1);
      } else {
        k.label = key;
      }
      k.value = value;
      config.knowggets.push_back(std::move(k));
      if (cur_.kind == TokKind::kComma) {
        advance();
        continue;
      }
      break;
    }
    return expect(TokKind::kRbrace, "'}'");
  }

  bool parseKeyValue(std::string& key, std::string& value) {
    if (cur_.kind != TokKind::kIdent) {
      error_ = "expected key, got '" + cur_.text + "'";
      return false;
    }
    key = cur_.text;
    advance();
    if (!expect(TokKind::kEquals, "'=' after key")) return false;
    if (cur_.kind != TokKind::kIdent) {
      error_ = "expected value for key '" + key + "'";
      return false;
    }
    value = cur_.text;
    advance();
    return true;
  }

  Lexer lexer_;
  Token cur_{TokKind::kEnd, "", 1};
  std::string error_;
};

}  // namespace

ConfigParseResult parseConfig(std::string_view text) {
  return Parser(text).parse();
}

std::string formatConfig(const KalisConfig& config) {
  std::ostringstream oss;
  oss << "modules = {\n";
  for (std::size_t i = 0; i < config.modules.size(); ++i) {
    const ModuleSpec& m = config.modules[i];
    oss << "  " << m.name;
    if (!m.params.empty()) {
      oss << " (";
      bool first = true;
      for (const auto& [k, v] : m.params) {
        if (!first) oss << ", ";
        first = false;
        oss << k << "=" << v;
      }
      oss << ")";
    }
    if (i + 1 < config.modules.size()) oss << ",";
    oss << "\n";
  }
  oss << "}\nknowggets = {\n";
  for (std::size_t i = 0; i < config.knowggets.size(); ++i) {
    const StaticKnowgget& k = config.knowggets[i];
    oss << "  " << k.label;
    if (!k.entity.empty()) oss << "@" << k.entity;
    oss << " = " << k.value;
    if (i + 1 < config.knowggets.size()) oss << ",";
    oss << "\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace kalis::ids
