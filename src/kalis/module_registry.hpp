// Module factory registry: instantiation-by-name, the C++ equivalent of the
// prototype's Java Reflection loading ("the corresponding class is
// dynamically instantiated by name", paper §V). A module registers a factory
// under its class name; configuration files can then activate modules
// without the core knowing about them at compile time.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kalis/module.hpp"

namespace kalis::ids {

class ModuleRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Module>()>;

  /// The process-wide registry holding every built-in module.
  static ModuleRegistry& global();

  /// Registers a factory; returns false (and keeps the old entry) on a
  /// duplicate name.
  bool add(const std::string& name, Factory factory);

  /// Instantiates by class name; nullptr when unknown.
  std::unique_ptr<Module> create(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t size() const { return factories_.size(); }

 private:
  std::map<std::string, Factory> factories_;
};

/// Registers every module shipped with this library into `registry`
/// (idempotent). Called once at startup by KalisNode::useStandardLibrary.
void registerStandardModules(ModuleRegistry& registry);

/// Helper for static registration of out-of-tree modules:
///   KALIS_REGISTER_MODULE(MyModule);
#define KALIS_REGISTER_MODULE(Type)                                     \
  namespace {                                                           \
  const bool kalis_registered_##Type = ::kalis::ids::ModuleRegistry::   \
      global().add(#Type, [] { return std::make_unique<Type>(); });     \
  }

}  // namespace kalis::ids
