#include "kalis/countermeasures.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace kalis::ids {

std::optional<NodeId> CountermeasureEngine::resolveEntity(
    const std::string& entity) const {
  if (auto mac16 = net::parseMac16(entity); mac16 && entity.size() >= 3) {
    // Only treat 0x-prefixed strings as short addresses; bare hex would
    // shadow other formats.
    if (startsWith(entity, "0x")) {
      return world_.nodeByMac16(*mac16);
    }
  }
  if (auto mac48 = net::parseMac48(entity)) {
    for (NodeId id = 0; id < world_.nodeCount(); ++id) {
      if (world_.mac48Of(id) == *mac48) return id;
    }
    return std::nullopt;
  }
  if (auto ip = net::parseIpv4(entity)) {
    for (NodeId id = 0; id < world_.nodeCount(); ++id) {
      if (world_.ipv4Of(id) == *ip) return id;
    }
  }
  return std::nullopt;
}

void CountermeasureEngine::onAlert(const Alert& alert) {
  if (alert.confidence < policy_.minConfidence) return;
  if (!policy_.actOn.empty() && !policy_.actOn.contains(alert.type)) return;

  for (const std::string& suspect : alert.suspectEntities) {
    Action action;
    action.time = alert.time;
    action.entity = suspect;
    action.cause = alert.type;

    if (policy_.neverRevoke.contains(suspect)) {
      action.reason = "protected entity";
      actions_.push_back(std::move(action));
      continue;
    }
    auto last = lastAction_.find(suspect);
    if (last != lastAction_.end() &&
        alert.time < last->second + policy_.perEntityCooldown) {
      action.reason = "cooldown";
      actions_.push_back(std::move(action));
      continue;
    }
    const auto node = resolveEntity(suspect);
    if (!node) {
      action.reason = "entity not resolvable to a node";
      actions_.push_back(std::move(action));
      continue;
    }
    action.node = *node;
    action.executed = true;
    action.reason = "revoked";
    lastAction_[suspect] = alert.time;
    world_.revoke(*node, policy_.revocationPeriod);
    KALIS_INFO("countermeasure", "revoked " << suspect << " ("
                                            << attackName(alert.type) << ")");
    actions_.push_back(std::move(action));
  }
}

std::size_t CountermeasureEngine::executedCount() const {
  std::size_t n = 0;
  for (const Action& action : actions_) {
    if (action.executed) ++n;
  }
  return n;
}

}  // namespace kalis::ids
