#include "kalis/module_registry.hpp"

#include "kalis/modules/anomaly.hpp"
#include "kalis/modules/data_alteration.hpp"
#include "kalis/modules/deauth_flood.hpp"
#include "kalis/modules/device_classifier.hpp"
#include "kalis/modules/encryption_detection.hpp"
#include "kalis/modules/hello_flood.hpp"
#include "kalis/modules/icmp_flood.hpp"
#include "kalis/modules/mobility_awareness.hpp"
#include "kalis/modules/replication.hpp"
#include "kalis/modules/selective_forwarding.hpp"
#include "kalis/modules/sinkhole.hpp"
#include "kalis/modules/smurf.hpp"
#include "kalis/modules/sybil.hpp"
#include "kalis/modules/syn_flood.hpp"
#include "kalis/modules/topology_discovery.hpp"
#include "kalis/modules/traffic_stats.hpp"
#include "kalis/modules/wormhole.hpp"

namespace kalis::ids {

ModuleRegistry& ModuleRegistry::global() {
  static ModuleRegistry registry;
  static const bool initialized = [] {
    registerStandardModules(registry);
    return true;
  }();
  (void)initialized;
  return registry;
}

bool ModuleRegistry::add(const std::string& name, Factory factory) {
  return factories_.emplace(name, std::move(factory)).second;
}

std::unique_ptr<Module> ModuleRegistry::create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second();
}

bool ModuleRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> ModuleRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

void registerStandardModules(ModuleRegistry& registry) {
  auto reg = [&registry](const std::string& name, auto maker) {
    registry.add(name, maker);
  };
  // Sensing modules.
  reg("TopologyDiscoveryModule",
      [] { return std::make_unique<TopologyDiscoveryModule>(); });
  reg("TrafficStatsModule", [] { return std::make_unique<TrafficStatsModule>(); });
  reg("MobilityAwarenessModule",
      [] { return std::make_unique<MobilityAwarenessModule>(); });
  reg("EncryptionDetectionModule",
      [] { return std::make_unique<EncryptionDetectionModule>(); });
  reg("DeviceClassifierModule",
      [] { return std::make_unique<DeviceClassifierModule>(); });
  // Detection modules.
  reg("IcmpFloodModule", [] { return std::make_unique<IcmpFloodModule>(); });
  reg("SmurfModule", [] { return std::make_unique<SmurfModule>(); });
  reg("SynFloodModule", [] { return std::make_unique<SynFloodModule>(); });
  reg("SelectiveForwardingModule",
      [] { return std::make_unique<SelectiveForwardingModule>(); });
  reg("BlackholeModule", [] { return std::make_unique<BlackholeModule>(); });
  reg("WormholeModule", [] { return std::make_unique<WormholeModule>(); });
  reg("ReplicationStaticModule",
      [] { return std::make_unique<ReplicationStaticModule>(); });
  reg("ReplicationMobileModule",
      [] { return std::make_unique<ReplicationMobileModule>(); });
  reg("SybilSinglehopModule",
      [] { return std::make_unique<SybilSinglehopModule>(); });
  reg("SybilMultihopModule",
      [] { return std::make_unique<SybilMultihopModule>(); });
  reg("SinkholeModule", [] { return std::make_unique<SinkholeModule>(); });
  reg("HelloFloodModule", [] { return std::make_unique<HelloFloodModule>(); });
  reg("DeauthFloodModule", [] { return std::make_unique<DeauthFloodModule>(); });
  reg("DataAlterationModule",
      [] { return std::make_unique<DataAlterationModule>(); });
  reg("AnomalyDetectionModule",
      [] { return std::make_unique<AnomalyDetectionModule>(); });
}

}  // namespace kalis::ids
