#include "kalis/profile.hpp"

#include <algorithm>
#include <sstream>

namespace kalis::ids {

DeploymentProfile generateProfile(const KnowledgeBase& kb,
                                  const ModuleRegistry& registry,
                                  const ProfileOptions& options) {
  DeploymentProfile profile;

  for (const std::string& name : registry.names()) {
    auto module = registry.create(name);
    if (!module) continue;
    const bool isSensing = !module->isDetection();
    const bool keep =
        isSensing ? options.keepSensingModules : module->required(kb);
    if (keep) {
      profile.modules.push_back(name);
      profile.estimatedFootprintBytes += module->memoryBytes();
      profile.config.modules.push_back(ModuleSpec{name, {}});
    } else {
      profile.excluded.push_back(name);
    }
  }

  // Freeze the learned features as a-priori knowggets: the constrained
  // deployment will not re-learn them.
  for (const std::string& label : options.frozenLabels) {
    for (const Knowgget& k : kb.byLabelPrefix(label)) {
      if (k.creator != kb.selfId()) continue;  // only our own knowledge
      profile.config.knowggets.push_back(
          StaticKnowgget{k.label, k.entity, k.value});
    }
  }
  // Deduplicate (byLabelPrefix can re-match children of frozen parents).
  auto& kws = profile.config.knowggets;
  std::sort(kws.begin(), kws.end(),
            [](const StaticKnowgget& a, const StaticKnowgget& b) {
              return std::tie(a.label, a.entity) < std::tie(b.label, b.entity);
            });
  kws.erase(std::unique(kws.begin(), kws.end(),
                        [](const StaticKnowgget& a, const StaticKnowgget& b) {
                          return a.label == b.label && a.entity == b.entity;
                        }),
            kws.end());
  return profile;
}

std::string formatBuildManifest(const DeploymentProfile& profile) {
  std::ostringstream oss;
  oss << "# Kalis constrained-deployment build manifest\n";
  oss << "# modules compiled in: " << profile.modules.size()
      << ", excluded: " << profile.excluded.size() << "\n";
  oss << "# estimated module state footprint: "
      << profile.estimatedFootprintBytes << " bytes\n";
  for (const std::string& name : profile.modules) {
    oss << "module " << name << "\n";
  }
  for (const std::string& name : profile.excluded) {
    oss << "# excluded " << name << "\n";
  }
  return oss.str();
}

}  // namespace kalis::ids
