// Deployment-profile generation — the paper's §VIII future-work vision:
// "selecting a specific module configuration — based on the knowledge
// collected by Kalis in a network — and deploy[ing] that configuration at
// compile-time on very small devices such as WSN nodes".
//
// Given a populated Knowledge Base (from a learning run) and the module
// registry, the generator computes the minimal module set whose services
// the network's features actually require, estimates its footprint, and
// emits (a) a Fig. 6-syntax configuration file freezing that set plus the
// learned static knowggets, and (b) a build manifest a firmware build could
// consume to compile only those modules in.
#pragma once

#include <string>
#include <vector>

#include "kalis/config.hpp"
#include "kalis/knowledge.hpp"
#include "kalis/module_registry.hpp"

namespace kalis::ids {

struct DeploymentProfile {
  std::vector<std::string> modules;        ///< minimal required set
  std::vector<std::string> excluded;       ///< library modules ruled out
  KalisConfig config;                      ///< frozen config (modules + knowggets)
  std::size_t estimatedFootprintBytes = 0; ///< module state estimate
};

struct ProfileOptions {
  /// Labels of knowggets to freeze into the generated config as a-priori
  /// knowledge. Defaults cover the feature knowggets the activation
  /// predicates consume.
  std::vector<std::string> frozenLabels = {
      labels::kMultihop, labels::kMultihopWpan, labels::kMultihopWifi,
      labels::kMobility, labels::kCtpRoot, "Protocols.TCP", "Protocols.UDP",
      "Protocols.ICMP", "Protocols.CTP", "Protocols.RPL", "Protocols.ZigBee",
      "Protocols.WiFi", "Protocols.BLE", "LinkEncryption.P802154",
      "LinkEncryption.WiFi"};
  /// Sensing modules to keep even though they are always "required":
  /// constrained deployments may drop knowledge discovery entirely.
  bool keepSensingModules = false;
};

/// Computes the profile for the network described by `kb`.
DeploymentProfile generateProfile(const KnowledgeBase& kb,
                                  const ModuleRegistry& registry,
                                  const ProfileOptions& options = {});

/// Renders the build manifest: one "module <name>" line per compiled-in
/// module plus the frozen feature summary, '#'-commented header.
std::string formatBuildManifest(const DeploymentProfile& profile);

}  // namespace kalis::ids
