// Automated response (paper §VI-A: "we program as a simple countermeasure
// the temporary revocation from the network of any node identified as
// suspect by the IDS").
//
// The engine subscribes to a Kalis node's alerts and translates suspects
// into revocations against the simulated world, with policy guards:
// a minimum confidence, a per-entity cooldown, and an allowlist of entities
// that must never be revoked (e.g. the base station, configured by an
// operator). It also keeps an auditable action log.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kalis/alert.hpp"
#include "sim/world.hpp"

namespace kalis::ids {

class CountermeasureEngine {
 public:
  struct Policy {
    double minConfidence = 0.6;        ///< ignore low-confidence alerts
    Duration revocationPeriod = seconds(30);
    Duration perEntityCooldown = seconds(60);
    std::set<std::string> neverRevoke; ///< protected entities
    /// Attack types that warrant revocation (empty = all).
    std::set<AttackType> actOn;
  };

  struct Action {
    SimTime time = 0;
    std::string entity;
    NodeId node = kInvalidNode;
    AttackType cause = AttackType::kNone;
    bool executed = false;   ///< false: suppressed by policy or unresolvable
    std::string reason;      ///< why it was suppressed, when it was
  };

  CountermeasureEngine(sim::World& world, Policy policy)
      : world_(world), policy_(std::move(policy)) {}

  /// The alert-sink entry point: wire with
  /// `kalisNode.setAlertSink([&](const Alert& a){ engine.onAlert(a); })`.
  void onAlert(const Alert& alert);

  const std::vector<Action>& actions() const { return actions_; }
  std::size_t executedCount() const;

  /// Resolves an entity string ("0x0005", "aa:bb:..", "10.0.0.2") to the
  /// world node currently holding that identity. Exposed for tests.
  std::optional<NodeId> resolveEntity(const std::string& entity) const;

 private:
  sim::World& world_;
  Policy policy_;
  std::vector<Action> actions_;
  std::map<std::string, SimTime> lastAction_;
};

}  // namespace kalis::ids
