#include "kalis/taxonomy.hpp"

namespace kalis::ids::taxonomy {

const char* entityKindName(EntityKind k) {
  switch (k) {
    case EntityKind::kInternetService: return "Internet Service";
    case EntityKind::kHub: return "Hub";
    case EntityKind::kSub: return "Sub";
    case EntityKind::kRouter: return "Router";
  }
  return "?";
}

const char* patternKindName(PatternKind k) {
  switch (k) {
    case PatternKind::kNotPossible: return "-";
    case PatternKind::kDenialOfService: return "Denial of Service";
    case PatternKind::kRemoteDot: return "Remote Denial of Thing";
    case PatternKind::kControlDot: return "Control Denial of Thing";
    case PatternKind::kDot: return "Denial of Thing";
    case PatternKind::kDenialOfRouting: return "Denial of Routing";
  }
  return "?";
}

PatternKind attackPattern(EntityKind source, EntityKind target) {
  // Transcription of Table I. Rows: source; columns: target.
  using E = EntityKind;
  using P = PatternKind;
  switch (source) {
    case E::kInternetService:
      switch (target) {
        case E::kInternetService: return P::kDenialOfService;
        case E::kHub: return P::kRemoteDot;
        case E::kSub: return P::kNotPossible;
        case E::kRouter: return P::kNotPossible;
      }
      break;
    case E::kHub:
      switch (target) {
        case E::kInternetService: return P::kDenialOfService;
        case E::kHub: return P::kControlDot;
        case E::kSub: return P::kDot;
        case E::kRouter: return P::kDenialOfRouting;
      }
      break;
    case E::kSub:
      switch (target) {
        case E::kInternetService: return P::kNotPossible;
        case E::kHub: return P::kNotPossible;
        case E::kSub: return P::kDot;
        case E::kRouter: return P::kNotPossible;
      }
      break;
    case E::kRouter:
      switch (target) {
        case E::kInternetService: return P::kNotPossible;
        case E::kHub: return P::kControlDot;
        case E::kSub: return P::kNotPossible;
        case E::kRouter: return P::kDenialOfRouting;
      }
      break;
  }
  return P::kNotPossible;
}

const char* featureName(Feature f) {
  switch (f) {
    case Feature::kSingleHop: return "single-hop";
    case Feature::kMultiHop: return "multi-hop";
    case Feature::kStaticNetwork: return "static";
    case Feature::kMobileNetwork: return "mobile";
    case Feature::kCryptoDeployed: return "crypto deployed";
    case Feature::kTcpTraffic: return "TCP traffic";
    case Feature::kIcmpTraffic: return "ICMP traffic";
    case Feature::kRoutingProtocol: return "routing protocol";
    case Feature::kWifiPresent: return "WiFi present";
    case Feature::kWpanPresent: return "802.15.4 present";
  }
  return "?";
}

const char* applicabilityMark(Applicability a) {
  switch (a) {
    case Applicability::kPossible: return "o";
    case Applicability::kImpossible: return "x";
    case Applicability::kTechniqueDependent: return "(o)";
  }
  return "?";
}

Applicability featureAttack(Feature f, AttackType a) {
  using F = Feature;
  using A = AttackType;
  using R = Applicability;
  switch (a) {
    case A::kSmurf:
      // "the Smurf attack is not possible in single-hop networks" (§III-A1).
      if (f == F::kSingleHop) return R::kImpossible;
      if (f == F::kIcmpTraffic || f == F::kMultiHop) return R::kPossible;
      break;
    case A::kIcmpFlood:
      if (f == F::kIcmpTraffic) return R::kPossible;
      break;
    case A::kSynFlood:
      if (f == F::kTcpTraffic) return R::kPossible;
      if (f == F::kWpanPresent) return R::kImpossible;  // no TCP on raw WPAN
      break;
    case A::kSelectiveForwarding:
    case A::kBlackhole:
      // "a selective forwarding attack cannot be carried out in a
      // single-hop network" (§III).
      if (f == F::kSingleHop) return R::kImpossible;
      if (f == F::kMultiHop) return R::kPossible;
      break;
    case A::kWormhole:
      if (f == F::kSingleHop) return R::kImpossible;
      if (f == F::kMultiHop) return R::kPossible;
      break;
    case A::kReplication:
      // "each one is specific to a network with certain characteristics,
      // e.g. mobility" (§VI-B2): circle on static/mobile.
      if (f == F::kStaticNetwork || f == F::kMobileNetwork) {
        return R::kTechniqueDependent;
      }
      if (f == F::kWpanPresent) return R::kPossible;
      break;
    case A::kSybil:
      // "for attacks such as sybil and sinkhole the detection techniques for
      // single-hop networks are significantly different from those adopted
      // for multi-hop networks" (§III-B2).
      if (f == F::kSingleHop || f == F::kMultiHop) {
        return R::kTechniqueDependent;
      }
      break;
    case A::kSinkhole:
      if (f == F::kSingleHop) return R::kImpossible;  // nothing to route
      if (f == F::kMultiHop) return R::kTechniqueDependent;
      if (f == F::kRoutingProtocol) return R::kPossible;
      break;
    case A::kDataAlteration:
      // "cryptographic techniques deployed on some of the monitored devices
      // make the latter immune to attacks such as data alteration" (§III-B2).
      if (f == F::kCryptoDeployed) return R::kImpossible;
      if (f == F::kSingleHop) return R::kImpossible;  // nothing forwarded
      if (f == F::kMultiHop) return R::kPossible;
      break;
    case A::kHelloFlood:
      // Beacon floods drain batteries regardless of hop structure.
      if (f == F::kRoutingProtocol) return R::kPossible;
      break;
    case A::kDeauthFlood:
      if (f == F::kWifiPresent) return R::kPossible;
      if (f == F::kWpanPresent) return R::kImpossible;
      break;
    default:
      break;
  }
  return Applicability::kPossible;  // default: cannot be ruled out
}

std::vector<AttackType> ruledOutBy(Feature f) {
  std::vector<AttackType> out;
  for (std::size_t i = 1; i < kNumAttackTypes; ++i) {
    const auto attack = static_cast<AttackType>(i);
    if (featureAttack(f, attack) == Applicability::kImpossible) {
      out.push_back(attack);
    }
  }
  return out;
}

std::vector<Feature> featuresFrom(const KnowledgeBase& kb) {
  std::vector<Feature> out;
  if (auto mh = kb.local<bool>(labels::kMultihop)) {
    out.push_back(*mh ? Feature::kMultiHop : Feature::kSingleHop);
  }
  if (auto mob = kb.local<bool>(labels::kMobility)) {
    out.push_back(*mob ? Feature::kMobileNetwork : Feature::kStaticNetwork);
  }
  if (kb.local<bool>("LinkEncryption.P802154").value_or(false) ||
      kb.local<bool>("LinkEncryption.WiFi").value_or(false)) {
    out.push_back(Feature::kCryptoDeployed);
  }
  if (kb.local<bool>("Protocols.TCP").value_or(false)) {
    out.push_back(Feature::kTcpTraffic);
  }
  if (kb.local<bool>("Protocols.ICMP").value_or(false)) {
    out.push_back(Feature::kIcmpTraffic);
  }
  if (kb.local<bool>("Protocols.CTP").value_or(false) ||
      kb.local<bool>("Protocols.RPL").value_or(false) ||
      kb.local<bool>("Protocols.ZigBee").value_or(false)) {
    out.push_back(Feature::kRoutingProtocol);
  }
  if (kb.local<bool>("Protocols.WiFi").value_or(false)) {
    out.push_back(Feature::kWifiPresent);
  }
  return out;
}

}  // namespace kalis::ids::taxonomy
