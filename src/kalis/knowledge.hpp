// The Knowledge Base and Collective Knowledge Management (paper §IV-B3, §V).
//
// A knowgget is the tuple <label, value, creator, entity>. The implementation
// mirrors the paper's key-value encoding exactly (Fig. 5b):
//
//     key   = "creator$label@entity"  (or "creator$label" with no entity)
//     value = string
//
// Multilevel knowggets flatten their hierarchy into dot-notation labels
// ("TrafficFrequency.TCPSYN"). Lookups by creator are prefix scans, lookups
// by entity are suffix scans, and exact keys are direct hits.
//
// Typed access goes through the single templated put<T>() / local<T>() pair:
// any argument type is normalized onto one of the four canonical value kinds
// (bool, long long, double, std::string) and encoded/decoded by the
// explicitly specialized KnowggetCodec.
//
// Collective knowledge: a knowgget marked collective is pushed, on change, to
// the CollectiveSink seam. Two kinds of sink exist: the in-simulator one-way
// peer channels installed by KalisNode::addPeer, and the cross-shard
// KnowledgeExchange of kalis::pipeline. Incoming remote knowggets may only
// create-or-update entries whose creator matches the sending node — a peer
// can never overwrite another node's knowledge (paper's one-way update rule).
//
// Shard-confinement contract (DESIGN.md §7/§8): a KnowledgeBase — store,
// subscriptions and sinks — is owned by exactly one thread for its
// lifetime; it carries no locks by design. kalis::pipeline gives every
// shard its own KB built on the owning worker thread. Debug builds bind an
// ownership checker on the first mutation (put/putRemote/remove/subscribe)
// and abort on any cross-thread access; reads follow the same confinement.
// Collective sync via putRemote is a *same-thread* mechanism: peer nodes
// must share the owner thread (and simulator). The one sanctioned way for
// knowledge to cross shards is the pipeline's KnowledgeExchange ring
// (DESIGN.md §8): a sink buffers changed collective knowggets on the owner
// thread, the exchange carries copies between shards, and the receiving
// worker applies them through putRemote on its own KB — every KB mutation
// still happens on the owning thread.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/thread_check.hpp"
#include "util/types.hpp"

namespace kalis::ids {

struct Knowgget {
  std::string label;
  std::string value;
  std::string creator;
  std::string entity;       ///< empty when not entity-specific
  bool collective = false;
  SimTime updated = 0;
};

/// "creator$label@entity" (entity part omitted when empty).
std::string encodeKey(std::string_view creator, std::string_view label,
                      std::string_view entity);

struct KeyParts {
  std::string creator;
  std::string label;
  std::string entity;
};

/// Inverse of encodeKey; nullopt if the '$' separator is missing.
std::optional<KeyParts> decodeKey(std::string_view key);

/// String codec for knowgget values (Fig. 5b stores every value as a
/// string). Only the four explicit specializations below exist — they are
/// the canonical value kinds of the Knowledge Base; put<T>()/local<T>()
/// normalize every argument type onto one of them via KnowggetValueT.
template <typename T>
struct KnowggetCodec;

template <>
struct KnowggetCodec<bool> {
  static std::string encode(bool v) { return v ? "true" : "false"; }
  static std::optional<bool> decode(const std::string& s) {
    return parseBool(s);
  }
};

template <>
struct KnowggetCodec<long long> {
  static std::string encode(long long v) { return std::to_string(v); }
  static std::optional<long long> decode(const std::string& s) {
    return parseInt(s);
  }
};

template <>
struct KnowggetCodec<double> {
  static std::string encode(double v) { return formatDouble(v); }
  static std::optional<double> decode(const std::string& s) {
    return parseDouble(s);
  }
};

template <>
struct KnowggetCodec<std::string> {
  static std::string encode(std::string v) { return v; }
  static std::optional<std::string> decode(std::string s) {
    return std::optional<std::string>(std::move(s));
  }
};

/// Maps an argument type onto its canonical knowgget value kind: bool stays
/// bool, other integrals widen to long long, floating point widens to
/// double, and everything else (std::string, const char*, string_view)
/// becomes std::string.
template <typename T>
using KnowggetValueT = std::conditional_t<
    std::is_same_v<std::decay_t<T>, bool>, bool,
    std::conditional_t<
        std::is_integral_v<std::decay_t<T>>, long long,
        std::conditional_t<std::is_floating_point_v<std::decay_t<T>>, double,
                           std::string>>>;

/// Receives every changed local collective knowgget of a KnowledgeBase for
/// propagation beyond the owning node. The two implementations are the
/// in-simulator one-way peer channels (KalisNode::addPeer) and the
/// cross-shard KnowledgeExchange of kalis::pipeline — one seam for both.
/// Sinks are invoked synchronously on the KB owner thread and must not
/// mutate the KB reentrantly.
class CollectiveSink {
 public:
  virtual ~CollectiveSink() = default;
  virtual void onCollective(const Knowgget& k) = 0;
};

/// An immutable, shareable knowledge segment (DESIGN.md §11): a sorted,
/// read-only set of knowggets that many KnowledgeBases reference through one
/// shared_ptr instead of each holding a private copy. kalis::fleet gives
/// every home in a region the same baseline segment; a home's KnowledgeBase
/// then stores only the knowggets that *diverge* from the baseline
/// (copy-on-write overlay), so fleet memory stays sublinear in homes.
///
/// Segments are frozen at construction — there is no mutation API, which is
/// what makes the cross-thread sharing safe without locks.
class BaselineSegment {
 public:
  /// Takes ownership of `entries`; keys are derived via encodeKey and the
  /// set is sorted by key (later duplicates win, mirroring map insertion).
  explicit BaselineSegment(std::vector<Knowgget> entries);

  /// Entry under the exact encoded key, or nullptr.
  const Knowgget* find(const std::string& key) const;

  /// All entries, sorted by encoded key.
  const std::vector<std::pair<std::string, Knowgget>>& entries() const {
    return entries_;
  }
  std::size_t size() const { return entries_.size(); }

  /// Live bytes of the segment itself — counted ONCE fleet-wide, not per
  /// referencing KnowledgeBase.
  std::size_t memoryBytes() const;

 private:
  std::vector<std::pair<std::string, Knowgget>> entries_;  ///< sorted by key
};

class KnowledgeBase {
 public:
  /// `selfId` is this Kalis node's identifier (the creator stamped on local
  /// knowggets), e.g. "K1".
  explicit KnowledgeBase(std::string selfId);

  const std::string& selfId() const { return selfId_; }

  /// Attaches a shared immutable baseline segment (DESIGN.md §11). Reads
  /// fall through to the baseline wherever the private overlay has no entry
  /// for the key; writes always land in the overlay (copy-on-write), and a
  /// write whose value matches the baseline entry is a no-op that costs no
  /// overlay memory. Set before the first write; replacing a baseline under
  /// live subscriptions is not supported.
  void setBaseline(std::shared_ptr<const BaselineSegment> baseline) {
    baseline_ = std::move(baseline);
  }
  const BaselineSegment* baseline() const { return baseline_.get(); }

  /// Advances the timestamp recorded on subsequent writes.
  void setClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  // --- writes ---------------------------------------------------------------

  /// Inserts/updates a local knowgget (creator = selfId), encoding `value`
  /// through KnowggetCodec<KnowggetValueT<T>>. Subscriptions fire only when
  /// the stored value actually changes.
  template <typename T>
  void put(const std::string& label, const T& value,
           const std::string& entity = "", bool collective = false) {
    putEncoded(label, KnowggetCodec<KnowggetValueT<T>>::encode(value), entity,
               collective);
  }

  /// Accepts a knowgget synchronized from a peer. Enforces the one-way rule:
  /// the update is rejected (returns false) if `k.creator` equals the local
  /// id, or if an existing entry under the same key has a different creator.
  bool putRemote(const Knowgget& k);

  /// Removes a local knowgget; returns true if it existed.
  bool remove(const std::string& label, const std::string& entity = "");

  // --- reads ----------------------------------------------------------------

  /// Raw value by full key ("K1$Multihop").
  std::optional<std::string> raw(const std::string& key) const;

  /// Local knowgget value (creator = selfId), decoded as T — one of the
  /// four canonical value kinds. Defaults to the raw string form.
  template <typename T = std::string>
  std::optional<T> local(const std::string& label,
                         const std::string& entity = "") const {
    static_assert(
        std::is_same_v<T, KnowggetValueT<T>>,
        "local<T>: T must be bool, long long, double or std::string");
    std::optional<std::string> v = raw(encodeKey(selfId_, label, entity));
    if (!v) return std::nullopt;
    return KnowggetCodec<T>::decode(*std::move(v));
  }

  /// All knowggets with this exact label, from any creator/entity.
  std::vector<Knowgget> byLabel(const std::string& label) const;
  /// All knowggets for an entity (suffix match on the key).
  std::vector<Knowgget> byEntity(const std::string& entity) const;
  /// Subtree of a multilevel knowgget: label itself plus "label.…" children,
  /// any creator.
  std::vector<Knowgget> byLabelPrefix(const std::string& labelPrefix) const;
  /// Everything created by a given Kalis node (prefix scan).
  std::vector<Knowgget> byCreator(const std::string& creator) const;

  std::vector<Knowgget> all() const;
  /// Logical knowgget count: overlay entries plus baseline entries the
  /// overlay does not shadow.
  std::size_t size() const;
  /// Overlay entries only — the knowggets this KB pays memory for.
  std::size_t overlaySize() const { return store_.size(); }

  /// Approximate live footprint, for the RAM accounting proxy. Counts the
  /// private overlay only: an attached BaselineSegment is shared and must be
  /// accounted once per segment (BaselineSegment::memoryBytes), not per KB.
  std::size_t memoryBytes() const;

  // --- subscriptions (the publish/subscribe activation mechanism) -----------

  /// `labelPattern` is an exact label, or a prefix pattern ending in "*"
  /// ("TrafficFrequency.*"). The callback fires on any value change with a
  /// matching label, from any creator.
  using Subscription = std::function<void(const Knowgget&)>;
  int subscribe(const std::string& labelPattern, Subscription fn);
  void unsubscribe(int id);

  /// Registers a sink that receives every changed local collective
  /// knowgget. Non-owning; several sinks may coexist (e.g. the peer channel
  /// and the pipeline exchange) and fire in registration order. Re-adding a
  /// registered sink is a no-op.
  void addCollectiveSink(CollectiveSink* sink);
  void removeCollectiveSink(CollectiveSink* sink);

  /// Disables all writes (used to emulate the "traditional IDS" baseline,
  /// which runs without a Knowledge Base).
  void setWritesEnabled(bool enabled) { writesEnabled_ = enabled; }
  bool writesEnabled() const { return writesEnabled_; }

  // --- observability (kalis::obs; zero-cost under KALIS_METRICS=OFF) -----------
  /// Local knowgget writes that actually changed a value.
  const obs::Counter& publishes() const { return publishes_; }
  /// Subscription callbacks fired (one per matched subscriber per change).
  const obs::Counter& subscriptionFires() const { return subscriptionFires_; }
  const obs::Counter& remoteAccepted() const { return remoteAccepted_; }
  const obs::Counter& remoteRejected() const { return remoteRejected_; }

  /// Appends KB metrics under `prefix` (e.g. "kalis.kb").
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const;

  /// Releases debug-build thread ownership for an explicit single-ended
  /// handoff (see util/thread_check.hpp). Never call while another thread
  /// may still touch this KB.
  void rebindOwnerThread() { owner_.rebind(); }

 private:
  /// The storage primitive behind put<T>: value already in canonical
  /// string form.
  void putEncoded(const std::string& label, std::string value,
                  const std::string& entity, bool collective);
  void notify(const Knowgget& k);
  SimTime nowTs() const { return clock_ ? clock_() : 0; }
  /// Visits every logical entry in key order: the overlay merged over the
  /// baseline, overlay entries shadowing same-key baseline entries.
  template <typename Fn>
  void forEachEntry(Fn&& fn) const;

  util::ThreadOwnershipChecker owner_;
  std::string selfId_;
  std::function<SimTime()> clock_;
  std::map<std::string, Knowgget> store_;  ///< overlay, by encoded key
  std::shared_ptr<const BaselineSegment> baseline_;  ///< read-through layer
  struct Sub {
    int id;
    std::string pattern;
    Subscription fn;
  };
  std::vector<Sub> subs_;
  int nextSubId_ = 1;
  std::vector<CollectiveSink*> collectiveSinks_;
  bool writesEnabled_ = true;
  obs::Counter publishes_;
  obs::Counter subscriptionFires_;
  obs::Counter remoteAccepted_;
  obs::Counter remoteRejected_;
};

template <typename Fn>
void KnowledgeBase::forEachEntry(Fn&& fn) const {
  // Both sides are sorted by encoded key: a two-pointer merge where the
  // overlay shadows same-key baseline entries.
  auto ov = store_.begin();
  if (baseline_) {
    for (const auto& [key, k] : baseline_->entries()) {
      while (ov != store_.end() && ov->first < key) {
        fn(ov->first, ov->second);
        ++ov;
      }
      if (ov != store_.end() && ov->first == key) continue;  // shadowed
      fn(key, k);
    }
  }
  for (; ov != store_.end(); ++ov) fn(ov->first, ov->second);
}

// Canonical knowgget labels shared between sensing and detection modules.
// Centralizing them prevents typo-induced activation bugs.
namespace labels {
inline constexpr const char* kMultihop = "Multihop";
inline constexpr const char* kMultihopWpan = "Multihop.P802154";
inline constexpr const char* kMultihopWifi = "Multihop.WiFi";
inline constexpr const char* kMobility = "Mobility";
inline constexpr const char* kMonitoredNodes = "MonitoredNodes";
inline constexpr const char* kCtpRoot = "CtpRoot";
inline constexpr const char* kSignalStrength = "SignalStrength";
inline constexpr const char* kTrafficFrequency = "TrafficFrequency";
inline constexpr const char* kProtocols = "Protocols";         // Protocols.TCP...
inline constexpr const char* kLinkEncryption = "LinkEncryption";
inline constexpr const char* kRole = "Role";
inline constexpr const char* kWormholeDrops = "Wormhole.Drops";
inline constexpr const char* kWormholeUnexplained = "Wormhole.Unexplained";
}  // namespace labels

}  // namespace kalis::ids
