#include "kalis/siem_export.hpp"

#include <sstream>

namespace kalis::ids {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string toSiemJson(const Alert& alert) {
  std::ostringstream oss;
  oss << "{\"v\":1,\"kind\":\"alert\",\"ts\":" << formatDouble(toSeconds(alert.time))
      << ",\"attack\":\"" << attackName(alert.type) << "\",\"module\":\""
      << jsonEscape(alert.moduleName) << "\",\"victim\":\""
      << jsonEscape(alert.victimEntity) << "\",\"suspects\":[";
  for (std::size_t i = 0; i < alert.suspectEntities.size(); ++i) {
    if (i) oss << ",";
    oss << "\"" << jsonEscape(alert.suspectEntities[i]) << "\"";
  }
  oss << "],\"confidence\":" << formatDouble(alert.confidence)
      << ",\"detail\":\"" << jsonEscape(alert.detail) << "\"}";
  return oss.str();
}

std::string toSiemJson(const Knowgget& knowgget) {
  std::ostringstream oss;
  oss << "{\"v\":1,\"kind\":\"knowgget\",\"ts\":"
      << formatDouble(toSeconds(knowgget.updated)) << ",\"key\":\""
      << jsonEscape(encodeKey(knowgget.creator, knowgget.label, knowgget.entity))
      << "\",\"value\":\"" << jsonEscape(knowgget.value) << "\",\"collective\":"
      << (knowgget.collective ? "true" : "false") << "}";
  return oss.str();
}

}  // namespace kalis::ids
