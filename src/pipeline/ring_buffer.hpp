// Bounded multi-producer ring — the queueing primitive of kalis::pipeline.
//
// BoundedRing<T> is a fixed array of `capacity` slots guarded by one mutex
// and two condition variables; batch dequeue amortizes the lock to well
// under the cost of handling a single item. Two instantiations exist:
//
//   PacketRing  = BoundedRing<net::CapturedPacket>   ingress stage: many
//                 producers (sniffer callbacks, trace replay loops) push
//                 captured packets, exactly one worker drains in batches.
//   BoundedRing<RemoteKnowgget>                      per-shard inbox of the
//                 cross-shard KnowledgeExchange (knowledge_exchange.hpp):
//                 every other worker publishes, the owning worker drains at
//                 batch boundaries via tryPopBatch.
//
// When the ring is full the configured backpressure policy decides:
//
//   kBlock       producer waits until the consumer frees a slot (lossless)
//   kDropNewest  the incoming item is rejected
//   kDropOldest  the oldest queued item is evicted to make room
//
// Every outcome is counted (always-on uint64 tallies for loss accounting,
// kalis::obs histograms/gauges for depth, enqueue latency, queue wait and
// batch size). All counters are updated under the ring mutex, so they are
// exact and TSan-clean.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "net/packet.hpp"
#include "util/metrics.hpp"

namespace kalis::pipeline {

/// Policy applied by BoundedRing::push when the ring is full.
enum class Backpressure : std::uint8_t { kBlock, kDropNewest, kDropOldest };

const char* backpressureName(Backpressure p);

template <typename T>
class BoundedRing {
 public:
  enum class PushResult : std::uint8_t {
    kOk,             ///< accepted, ring had room
    kOkBlocked,      ///< accepted after waiting for room (kBlock)
    kDroppedNewest,  ///< rejected: the incoming item was dropped
    kDroppedOldest,  ///< accepted, but the oldest queued item was evicted
    kClosed,         ///< rejected: the ring is closed
  };

  /// A queued item plus its (sampled) enqueue timestamp for queue-wait
  /// latency; 0 when the item was not sampled.
  struct Item {
    T value{};
    std::uint64_t enqueuedNs = 0;
  };

  /// Exact event tallies since construction (guarded by the ring mutex).
  struct Stats {
    std::uint64_t pushed = 0;         ///< items accepted
    std::uint64_t droppedNewest = 0;  ///< incoming items rejected
    std::uint64_t droppedOldest = 0;  ///< queued items evicted
    std::uint64_t blockedPushes = 0;  ///< pushes that had to wait
    std::uint64_t closedPushes = 0;   ///< pushes rejected by close()
    std::uint64_t popped = 0;         ///< items handed to the consumer
    std::uint64_t batches = 0;        ///< popBatch calls that returned items
  };

  explicit BoundedRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  /// Enqueues one item under `policy`. Thread-safe for any number of
  /// producers. With kBlock this waits until a slot frees up or the ring
  /// is closed.
  PushResult push(const T& value, Backpressure policy) {
    // One clock read on entry (metrics builds only); the exit read happens
    // on 1-in-kSampleEvery pushes, keeping steady_clock off the hot path.
    const std::uint64_t t0 = obs::kEnabled ? obs::nowNs() : 0;
    std::unique_lock<std::mutex> lock(mu_);
    bool blocked = false;
    bool evicted = false;
    if (closed_) {
      ++stats_.closedPushes;
      return PushResult::kClosed;
    }
    if (count_ == capacity_) {
      switch (policy) {
        case Backpressure::kDropNewest:
          ++stats_.droppedNewest;
          return PushResult::kDroppedNewest;
        case Backpressure::kDropOldest:
          head_ = (head_ + 1) % capacity_;
          --count_;
          ++stats_.droppedOldest;
          evicted = true;
          break;
        case Backpressure::kBlock:
          blocked = true;
          ++stats_.blockedPushes;
          notFull_.wait(lock,
                        [this] { return closed_ || count_ < capacity_; });
          if (closed_) {
            ++stats_.closedPushes;
            return PushResult::kClosed;
          }
          break;
      }
    }
    Item& slot = slots_[(head_ + count_) % capacity_];
    slot.value = value;
    const bool sampled = obs::kEnabled && (stats_.pushed % kSampleEvery) == 0;
    slot.enqueuedNs = sampled ? t0 : 0;
    ++count_;
    ++stats_.pushed;
    depth_.set(static_cast<double>(count_));
    if (sampled) enqueueNs_.record(obs::nowNs() - t0);
    lock.unlock();
    notEmpty_.notify_one();
    if (evicted) return PushResult::kDroppedOldest;
    return blocked ? PushResult::kOkBlocked : PushResult::kOk;
  }

  /// Moves up to `maxBatch` items into `out` (appended). Blocks until at
  /// least one item is available or the ring is closed; returns the number
  /// of items appended — 0 means closed and fully drained.
  std::size_t popBatch(std::vector<Item>& out, std::size_t maxBatch) {
    std::unique_lock<std::mutex> lock(mu_);
    notEmpty_.wait(lock, [this] { return closed_ || count_ > 0; });
    return popLocked(lock, out, maxBatch);
  }

  /// Non-blocking popBatch: returns immediately with 0 when the ring is
  /// empty (open or closed). Used by consumers that poll at batch
  /// boundaries, e.g. the knowledge-exchange drain.
  std::size_t tryPopBatch(std::vector<Item>& out, std::size_t maxBatch) {
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == 0) return 0;
    return popLocked(lock, out, maxBatch);
  }

  /// Rejects all future pushes and wakes every waiter; queued items stay
  /// drainable via popBatch (drain-on-shutdown).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return capacity_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Appends ring metrics under `prefix` (e.g. "pipeline.shard.0.ring").
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const {
    std::lock_guard<std::mutex> lock(mu_);
    reg.counter(prefix + ".pushed", stats_.pushed);
    reg.counter(prefix + ".dropped_newest", stats_.droppedNewest);
    reg.counter(prefix + ".dropped_oldest", stats_.droppedOldest);
    reg.counter(prefix + ".blocked_pushes", stats_.blockedPushes);
    reg.counter(prefix + ".closed_pushes", stats_.closedPushes);
    reg.counter(prefix + ".popped", stats_.popped);
    reg.counter(prefix + ".batches", stats_.batches);
    reg.gauge(prefix + ".depth", depth_);
    reg.histogram(prefix + ".enqueue_ns", enqueueNs_);
    reg.histogram(prefix + ".queue_wait_ns", queueWaitNs_);
    reg.histogram(prefix + ".batch_size", batchSize_);
  }

  /// Enqueue latency is sampled 1 push in kSampleEvery (cf.
  /// ModuleManager::kLatencySampleEvery).
  static constexpr std::uint64_t kSampleEvery = 16;

 private:
  /// Pop body shared by the blocking and non-blocking variants; requires
  /// count_ > 0 or closed_, with `lock` held on mu_.
  std::size_t popLocked(std::unique_lock<std::mutex>& lock,
                        std::vector<Item>& out, std::size_t maxBatch) {
    const std::size_t n = std::min(maxBatch == 0 ? 1 : maxBatch, count_);
    for (std::size_t i = 0; i < n; ++i) {
      Item& slot = slots_[head_];
      if (slot.enqueuedNs != 0) queueWaitNs_.record(obs::nowNs() - slot.enqueuedNs);
      out.push_back(std::move(slot));
      head_ = (head_ + 1) % capacity_;
    }
    count_ -= n;
    if (n > 0) {
      stats_.popped += n;
      ++stats_.batches;
      batchSize_.record(n);
      depth_.set(static_cast<double>(count_));
      lock.unlock();
      notFull_.notify_all();  // several producers may be waiting
    }
    return n;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::vector<Item> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
  Stats stats_;
  obs::Gauge depth_;
  obs::Histogram enqueueNs_;
  obs::Histogram queueWaitNs_;
  obs::Histogram batchSize_;
};

/// The ingress packet queue of each pipeline shard (MPSC).
using PacketRing = BoundedRing<net::CapturedPacket>;

inline const char* backpressureName(Backpressure p) {
  switch (p) {
    case Backpressure::kBlock: return "block";
    case Backpressure::kDropNewest: return "drop-newest";
    case Backpressure::kDropOldest: return "drop-oldest";
  }
  return "?";
}

}  // namespace kalis::pipeline
