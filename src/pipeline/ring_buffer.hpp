// Bounded multi-producer ring — the queueing primitive of kalis::pipeline.
//
// BoundedRing<T> is a fixed array of `capacity` slots guarded by one mutex
// and two condition variables. The cross-thread hot path is batched at both
// ends:
//
//   producers   pushBatch() inserts a whole run of items under ONE lock
//               acquisition and issues AT MOST ONE notify — and only when a
//               consumer is actually parked (waiter counters elide the futex
//               wake entirely while the consumer keeps up).
//   consumer    popBatch() drains up to maxBatch items per lock; before
//               parking on the condvar it spins briefly (adaptive: the spin
//               budget collapses after a fruitless round and is restored by
//               the next immediate hit), so a steadily-fed ring never pays
//               wake-up latency.
//
// Two instantiations exist:
//
//   PacketRing  = BoundedRing<net::CapturedPacket>   ingress stage: many
//                 producers (sniffer callbacks, trace replay loops) push
//                 captured packets, exactly one worker drains in batches.
//   BoundedRing<RemoteKnowgget>                      per-shard inbox of the
//                 cross-shard KnowledgeExchange (knowledge_exchange.hpp):
//                 every other worker publishes, the owning worker drains at
//                 batch boundaries via tryPopBatch.
//
// When the ring is full the configured backpressure policy decides:
//
//   kBlock       producer waits until the consumer frees a slot (lossless)
//   kDropNewest  the incoming item is rejected
//   kDropOldest  the oldest queued item is evicted to make room
//
// pushBatch applies the policy item by item, so its loss accounting is
// exactly what the same sequence of single pushes would have produced.
//
// Every outcome is counted (always-on uint64 tallies for loss accounting,
// kalis::obs histograms/gauges for depth, queue wait and batch size). All
// counters are updated under the ring mutex, so they are exact and
// TSan-clean. Timestamps are sampled 1-in-kSampleEvery and read under the
// lock — the fast path performs no clock read at all.
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "net/packet.hpp"
#include "util/metrics.hpp"

namespace kalis::pipeline {

/// Policy applied by BoundedRing::push when the ring is full.
enum class Backpressure : std::uint8_t { kBlock, kDropNewest, kDropOldest };

const char* backpressureName(Backpressure p);

namespace detail {
/// One spin-loop pause: a core-local hint, never a syscall.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}
}  // namespace detail

template <typename T>
class BoundedRing {
 public:
  enum class PushResult : std::uint8_t {
    kOk,             ///< accepted, ring had room
    kOkBlocked,      ///< accepted after waiting for room (kBlock)
    kDroppedNewest,  ///< rejected: the incoming item was dropped
    kDroppedOldest,  ///< accepted, but the oldest queued item was evicted
    kClosed,         ///< rejected: the ring is closed
  };

  /// Per-call outcome of pushBatch: exact item tallies, equivalent to the
  /// sum of single-push results over the same sequence.
  struct BatchPushResult {
    std::size_t accepted = 0;       ///< items now in (or through) the ring
    std::size_t droppedNewest = 0;  ///< incoming items rejected
    std::size_t droppedOldest = 0;  ///< queued items evicted to make room
    std::size_t rejectedClosed = 0; ///< items refused because close()d
    bool blocked = false;           ///< at least one wait for room (kBlock)
  };

  /// A queued item plus its (sampled) enqueue timestamp for queue-wait
  /// latency; 0 when the item was not sampled.
  struct Item {
    T value{};
    std::uint64_t enqueuedNs = 0;
  };

  /// Exact event tallies since construction (guarded by the ring mutex).
  struct Stats {
    std::uint64_t pushed = 0;         ///< items accepted
    std::uint64_t droppedNewest = 0;  ///< incoming items rejected
    std::uint64_t droppedOldest = 0;  ///< queued items evicted
    std::uint64_t blockedPushes = 0;  ///< pushes that had to wait
    std::uint64_t closedPushes = 0;   ///< pushes rejected by close()
    std::uint64_t popped = 0;         ///< items handed to the consumer
    std::uint64_t batches = 0;        ///< popBatch calls that returned items
    std::uint64_t notifies = 0;       ///< consumer wake-ups actually issued
    std::uint64_t consumerWaits = 0;  ///< popBatch calls that parked
  };

  explicit BoundedRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  /// Enqueues one item under `policy`. Thread-safe for any number of
  /// producers. With kBlock this waits until a slot frees up or the ring
  /// is closed.
  PushResult push(const T& value, Backpressure policy) {
    const T* one = &value;
    const BatchPushResult r = pushBatch(&one, 1, policy);
    if (r.rejectedClosed > 0) return PushResult::kClosed;
    if (r.droppedNewest > 0) return PushResult::kDroppedNewest;
    if (r.droppedOldest > 0) return PushResult::kDroppedOldest;
    return r.blocked ? PushResult::kOkBlocked : PushResult::kOk;
  }

  /// Enqueues `count` items (array of pointers, in order) under ONE lock
  /// acquisition, with at most one consumer notify for the whole batch.
  /// Item-level semantics — acceptance, eviction order, every counter —
  /// are identical to pushing the same sequence one at a time. Thread-safe
  /// for any number of producers. With kBlock the call may wait (holding
  /// no lock) whenever the ring fills mid-batch; it first wakes the
  /// consumer so the wait always terminates.
  BatchPushResult pushBatch(const T* const* items, std::size_t count,
                            Backpressure policy) {
    BatchPushResult r;
    if (count == 0) return r;
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t i = 0;
    while (i < count) {
      if (closed_) {
        stats_.closedPushes += count - i;
        r.rejectedClosed += count - i;
        break;
      }
      if (count_ == capacity_) {
        if (policy == Backpressure::kDropNewest) {
          stats_.droppedNewest += count - i;
          r.droppedNewest += count - i;
          break;
        }
        if (policy == Backpressure::kDropOldest) {
          head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
          --count_;
          ++stats_.droppedOldest;
          ++r.droppedOldest;
        } else {  // kBlock
          ++stats_.blockedPushes;
          r.blocked = true;
          // Wake the consumer before parking: items already inserted this
          // batch are what will free our slot, and the batch-level notify
          // only fires after the loop.
          if (count_ > 0 && waitingConsumers_ > 0) {
            ++stats_.notifies;
            notEmpty_.notify_one();
          }
          ++waitingProducers_;
          notFull_.wait(lock,
                        [this] { return closed_ || count_ < capacity_; });
          --waitingProducers_;
          continue;  // re-check closed_/full from the top
        }
      }
      Item& slot = slots_[tailIndex()];
      slot.value = *items[i];
      // 1-in-kSampleEvery pushes get a timestamp for the queue-wait
      // histogram; the clock is read only for those, under the lock.
      const bool sampled =
          obs::kEnabled && (stats_.pushed % kSampleEvery) == 0;
      slot.enqueuedNs = sampled ? obs::nowNs() : 0;
      ++count_;
      ++stats_.pushed;
      ++r.accepted;
      ++i;
    }
    depth_.set(static_cast<double>(count_));
    const bool notify = r.accepted > 0 && waitingConsumers_ > 0;
    if (notify) ++stats_.notifies;
    lock.unlock();
    if (notify) notEmpty_.notify_one();
    return r;
  }

  /// Moves up to `maxBatch` items into `out` (appended). Blocks until at
  /// least one item is available or the ring is closed; returns the number
  /// of items appended — 0 means closed and fully drained. Single consumer.
  ///
  /// Before parking on the condvar the consumer spins briefly; the spin
  /// budget adapts (a fruitless spin round collapses it to zero until the
  /// next immediate hit), so an idle ring parks at once while a busy one
  /// never pays the futex round-trip.
  std::size_t popBatch(std::vector<Item>& out, std::size_t maxBatch) {
    for (int spin = spinBudget_; spin > 0; --spin) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (count_ > 0 || closed_) {
          spinBudget_ = kSpinIters;
          return popLocked(lock, out, maxBatch);
        }
      }
      for (int i = 0; i < kPausePerSpin; ++i) detail::cpuRelax();
    }
    spinBudget_ = 0;  // adaptive: don't spin again until data shows up hot
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == 0 && !closed_) {
      ++stats_.consumerWaits;
      ++waitingConsumers_;
      notEmpty_.wait(lock, [this] { return closed_ || count_ > 0; });
      --waitingConsumers_;
    } else {
      spinBudget_ = kSpinIters;  // data arrived between spin and lock
    }
    return popLocked(lock, out, maxBatch);
  }

  /// Non-blocking popBatch: returns immediately with 0 when the ring is
  /// empty (open or closed). Used by consumers that poll at batch
  /// boundaries, e.g. the knowledge-exchange drain.
  std::size_t tryPopBatch(std::vector<Item>& out, std::size_t maxBatch) {
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == 0) return 0;
    return popLocked(lock, out, maxBatch);
  }

  /// Rejects all future pushes and wakes every waiter; queued items stay
  /// drainable via popBatch (drain-on-shutdown).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return capacity_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Appends ring metrics under `prefix` (e.g. "pipeline.shard.0.ring").
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const {
    std::lock_guard<std::mutex> lock(mu_);
    reg.counter(prefix + ".pushed", stats_.pushed);
    reg.counter(prefix + ".dropped_newest", stats_.droppedNewest);
    reg.counter(prefix + ".dropped_oldest", stats_.droppedOldest);
    reg.counter(prefix + ".blocked_pushes", stats_.blockedPushes);
    reg.counter(prefix + ".closed_pushes", stats_.closedPushes);
    reg.counter(prefix + ".popped", stats_.popped);
    reg.counter(prefix + ".batches", stats_.batches);
    reg.counter(prefix + ".notifies", stats_.notifies);
    reg.counter(prefix + ".consumer_waits", stats_.consumerWaits);
    reg.gauge(prefix + ".depth", depth_);
    reg.histogram(prefix + ".queue_wait_ns", queueWaitNs_);
    reg.histogram(prefix + ".batch_size", batchSize_);
  }

  /// Queue-wait latency is sampled 1 push in kSampleEvery (cf.
  /// ModuleManager::kLatencySampleEvery).
  static constexpr std::uint64_t kSampleEvery = 16;
  /// Consumer spin-then-wait tuning: up to kSpinIters lock-and-peek rounds
  /// of kPausePerSpin pause hints each (~a few µs total) before parking.
  static constexpr int kSpinIters = 48;
  static constexpr int kPausePerSpin = 32;

 private:
  std::size_t tailIndex() const {
    const std::size_t t = head_ + count_;
    return t >= capacity_ ? t - capacity_ : t;
  }

  /// Pop body shared by the blocking and non-blocking variants; requires
  /// count_ > 0 or closed_, with `lock` held on mu_.
  std::size_t popLocked(std::unique_lock<std::mutex>& lock,
                        std::vector<Item>& out, std::size_t maxBatch) {
    const std::size_t n = std::min(maxBatch == 0 ? 1 : maxBatch, count_);
    for (std::size_t i = 0; i < n; ++i) {
      Item& slot = slots_[head_];
      if (slot.enqueuedNs != 0) queueWaitNs_.record(obs::nowNs() - slot.enqueuedNs);
      out.push_back(std::move(slot));
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    }
    count_ -= n;
    if (n > 0) {
      stats_.popped += n;
      ++stats_.batches;
      batchSize_.record(n);
      depth_.set(static_cast<double>(count_));
      const bool wakeProducers = waitingProducers_ > 0;
      lock.unlock();
      if (wakeProducers) notFull_.notify_all();  // several may be parked
    }
    return n;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::vector<Item> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
  std::size_t waitingConsumers_ = 0;  ///< parked popBatch callers (mu_)
  std::size_t waitingProducers_ = 0;  ///< parked kBlock pushers (mu_)
  /// Consumer-thread-only spin budget (single consumer; touched outside
  /// mu_ exclusively by that one thread).
  int spinBudget_ = kSpinIters;
  Stats stats_;
  obs::Gauge depth_;
  obs::Histogram queueWaitNs_;
  obs::Histogram batchSize_;
};

/// The ingress packet queue of each pipeline shard (MPSC).
using PacketRing = BoundedRing<net::CapturedPacket>;

inline const char* backpressureName(Backpressure p) {
  switch (p) {
    case Backpressure::kBlock: return "block";
    case Backpressure::kDropNewest: return "drop-newest";
    case Backpressure::kDropOldest: return "drop-oldest";
  }
  return "?";
}

}  // namespace kalis::pipeline
