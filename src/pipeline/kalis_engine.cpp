#include "pipeline/kalis_engine.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace kalis::pipeline {

namespace {

class KalisShardEngine : public PacketEngine {
 public:
  KalisShardEngine(const KalisEngineOptions& options, std::size_t shard)
      : sim_(options.seedBase + shard),
        node_(sim_, nodeOptions(options, shard)),
        drainUntil_(options.drainUntil) {
    if (options.configure) options.configure(node_);
    node_.setAlertSink([this](const ids::Alert& alert) {
      fresh_.push_back(alert);
    });
    node_.start();
  }

  void onPacket(const net::CapturedPacket& pkt) override {
    node_.replayFeed(pkt);
  }

  std::vector<ids::Alert> takeAlerts() override {
    return std::exchange(fresh_, {});
  }

  SimTime watermark() const override { return sim_.now(); }

  void finish() override {
    if (drainUntil_ > sim_.now()) sim_.runUntil(drainUntil_);
  }

 private:
  static ids::KalisNode::Options nodeOptions(const KalisEngineOptions& options,
                                             std::size_t shard) {
    ids::KalisNode::Options node = options.node;
    if (shard > 0) node.id += "-s" + std::to_string(shard);
    return node;
  }

  sim::Simulator sim_;
  ids::KalisNode node_;
  SimTime drainUntil_;
  std::vector<ids::Alert> fresh_;
};

}  // namespace

EngineFactory makeKalisEngineFactory(KalisEngineOptions options) {
  return [options = std::move(options)](std::size_t shard) {
    return std::make_unique<KalisShardEngine>(options, shard);
  };
}

}  // namespace kalis::pipeline
