#include "pipeline/kalis_engine.hpp"

#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "net/batch_arena.hpp"
#include "sim/simulator.hpp"

namespace kalis::pipeline {

namespace {

class KalisShardEngine : public PacketEngine {
 public:
  KalisShardEngine(const KalisEngineOptions& options, std::size_t shard)
      : sim_(options.seedBase + shard),
        node_(sim_, nodeOptions(options, shard)),
        drainUntil_(options.drainUntil) {
    if (options.configure) options.configure(node_);
    node_.setAlertSink([this](const ids::Alert& alert) {
      fresh_.push_back(alert);
    });
    // Buffer this node's collective changes for the cross-shard exchange.
    // Registered before start() so a-priori collective knowggets are seen.
    node_.kb().addCollectiveSink(&collectiveBuffer_);
    node_.start();
  }

  void onPacket(const net::CapturedPacket& pkt) override {
    node_.replayFeed(pkt);
  }

  void onBatch(const net::CapturedPacket* const* pkts,
               std::size_t count) override {
    static_assert(std::is_trivially_destructible_v<net::Dissection>,
                  "batch dissections live in the arena across reset()");
    // Dissect the whole dequeue once, in place, into the shard arena; the
    // views alias the ring Items, which outlive this call. The arena is
    // rewound (not freed) per batch, so the steady-state packet path does
    // no heap allocation for dissection state.
    arena_.reset();
    net::Dissection* dis = arena_.allocateArray<net::Dissection>(count);
    for (std::size_t i = 0; i < count; ++i) {
      ::new (&dis[i]) net::Dissection(net::dissect(*pkts[i]));
    }
    for (std::size_t i = 0; i < count; ++i) {
      node_.replayFeed(*pkts[i], dis[i]);
    }
  }

  std::vector<ids::Alert> takeAlerts() override {
    return std::exchange(fresh_, {});
  }

  void drainAlerts(std::vector<ids::Alert>& out) override {
    for (ids::Alert& a : fresh_) out.push_back(std::move(a));
    fresh_.clear();  // keeps capacity: the alert buffer is pooled
  }

  SimTime watermark() const override { return sim_.now(); }

  void finish() override {
    if (drainUntil_ > sim_.now()) sim_.runUntil(drainUntil_);
  }

  std::vector<ids::Knowgget> takeCollectiveUpdates() override {
    return std::exchange(collectiveBuffer_.pending, {});
  }

  bool applyRemoteKnowledge(const ids::Knowgget& k) override {
    return node_.kb().putRemote(k);
  }

  std::vector<ids::Knowgget> collectiveKnowledge(bool ownedOnly) const override {
    std::vector<ids::Knowgget> out;
    for (ids::Knowgget& k : node_.kb().all()) {
      if (!k.collective) continue;
      if (ownedOnly && k.creator != node_.id()) continue;
      out.push_back(std::move(k));
    }
    return out;
  }

 private:
  /// CollectiveSink buffering changed collective knowggets until the
  /// Pipeline drains them at the next batch boundary. Same-key re-changes
  /// are appended, not coalesced: putRemote applies them in order, so the
  /// receiver converges on the last value.
  struct BufferSink final : ids::CollectiveSink {
    void onCollective(const ids::Knowgget& k) override { pending.push_back(k); }
    std::vector<ids::Knowgget> pending;
  };

  static ids::KalisNode::Options nodeOptions(const KalisEngineOptions& options,
                                             std::size_t shard) {
    ids::KalisNode::Options node = options.node;
    if (shard > 0) node.id += "-s" + std::to_string(shard);
    return node;
  }

  sim::Simulator sim_;
  ids::KalisNode node_;
  net::BatchArena arena_;
  SimTime drainUntil_;
  std::vector<ids::Alert> fresh_;
  BufferSink collectiveBuffer_;
};

}  // namespace

EngineFactory makeKalisEngineFactory(KalisEngineOptions options) {
  return [options = std::move(options)](std::size_t shard) {
    return std::make_unique<KalisShardEngine>(options, shard);
  };
}

}  // namespace kalis::pipeline
