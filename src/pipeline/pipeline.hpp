// kalis::pipeline — sharded multi-worker packet-ingestion engine with
// backpressure (DESIGN.md §7).
//
// Decouples packet capture from detection:
//
//   producers ──enqueue──▶ per-shard bounded MPSC rings ──▶ worker threads
//        (hash by link-layer source)        (batch dequeue)     │
//                                                               ▼
//                                                      shard PacketEngine
//                                                               │ alerts
//                                                               ▼
//                      timestamp-ordered merge ──▶ alert sink / SIEM export
//
// Sharding is by link-layer source address (pipeline/shard_key.hpp), so all
// per-device state — flood windows, watchdog counters, DataStore windows —
// stays on one worker and no detection structure needs a lock.
//
// The merge stage buffers shard alerts in a min-heap keyed by
// (time, shard, seq) and releases an alert only once every live shard's
// watermark has passed its timestamp, so the emitted stream is totally
// ordered and identical across runs regardless of thread interleaving.
//
// Modes:
//   deterministic = true   single shard, processed synchronously on the
//                          caller thread — bit-reproducible, used by ctest
//                          and the discrete-event simulator.
//   deterministic = false  `workers` threads, each owning one shard.
//
// Lifecycle: construct → (setAlertSink) → start() → enqueue()* → stop().
// stop() closes the rings, drains every queued packet (drain-on-shutdown),
// joins the workers and flushes the merge stage. A Pipeline is one-shot.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/engine.hpp"
#include "pipeline/ring_buffer.hpp"
#include "pipeline/shard_key.hpp"
#include "util/metrics.hpp"

namespace kalis::pipeline {

struct Options {
  /// Worker threads (= shards). Clamped to >= 1; forced to 1 by
  /// `deterministic`.
  std::size_t workers = 4;
  std::size_t queueCapacity = 4096;  ///< ring slots per shard
  std::size_t maxBatch = 64;         ///< packets per worker dequeue
  Backpressure policy = Backpressure::kBlock;
  /// Single-shard caller-thread mode: enqueue() runs the engine inline and
  /// emits alerts immediately, bit-identical to feeding the engine
  /// directly.
  bool deterministic = false;
};

class Pipeline {
 public:
  Pipeline(Options options, EngineFactory factory);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Receives every merged alert, in nondecreasing time order. Threaded
  /// mode invokes the sink from worker threads, but never concurrently
  /// (serialized under the merge lock). Set before start().
  void setAlertSink(std::function<void(const ids::Alert&)> sink);

  /// Spawns the workers (threaded mode) or builds the shard engine
  /// (deterministic mode). Call once.
  void start();
  bool started() const { return started_; }
  bool stopped() const { return stopped_; }

  /// Hash-routes the packet to its shard. Returns true iff this packet was
  /// accepted (under kDropOldest an *older* packet may have been evicted —
  /// see droppedOldest()). Threaded mode: callable from any thread, also
  /// before start() (packets buffer in the rings). Deterministic mode:
  /// caller thread only, after start().
  bool enqueue(const net::CapturedPacket& pkt);

  /// Drains every queued packet, joins the workers, runs engine finish()
  /// and flushes the merge stage. Idempotent.
  void stop();

  /// All merged alerts, in emission order. Stable once stop() returned.
  const std::vector<ids::Alert>& alerts() const { return merge_.emitted; }

  std::size_t shardCount() const { return shards_.size(); }
  const Options& options() const { return options_; }

  // --- loss accounting (exact, valid while producers are quiescent) ----------
  std::uint64_t enqueued() const;       ///< packets accepted into rings
  std::uint64_t processed() const;      ///< packets handed to engines
  std::uint64_t droppedNewest() const;  ///< rejected incoming packets
  std::uint64_t droppedOldest() const;  ///< evicted queued packets
  std::uint64_t dropped() const { return droppedNewest() + droppedOldest(); }
  std::uint64_t blockedPushes() const;  ///< pushes that waited for room

  /// Appends pipeline + per-shard ring metrics under `prefix`
  /// (e.g. "pipeline"). Call while quiescent (before start or after stop).
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : ring(capacity) {}
    PacketRing ring;
    std::unique_ptr<PacketEngine> engine;
    std::thread worker;
  };

  /// Timestamp-ordered, watermark-gated alert merge.
  struct MergeStage {
    struct Pending {
      ids::Alert alert;
      std::size_t shard = 0;
      std::uint64_t seq = 0;
    };
    /// Heap comparator: smallest (time, shard, seq) on top.
    struct Later {
      bool operator()(const Pending& a, const Pending& b) const;
    };
    std::mutex mu;
    std::vector<Pending> heap;  ///< min-heap by (time, shard, seq)
    std::vector<SimTime> watermark;
    std::vector<char> done;
    std::vector<std::uint64_t> nextSeq;
    std::vector<ids::Alert> emitted;
    std::function<void(const ids::Alert&)> sink;

    void offer(std::size_t shard, std::vector<ids::Alert> alerts,
               SimTime shardWatermark, bool shardDone);

   private:
    void flushLocked();
  };

  void workerMain(std::size_t shard);
  void collectFrom(std::size_t shard, bool shardDone);

  Options options_;
  EngineFactory factory_;
  std::vector<std::unique_ptr<Shard>> shards_;
  MergeStage merge_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<PacketRing::Item> detBatch_;  ///< deterministic-mode scratch
};

}  // namespace kalis::pipeline
