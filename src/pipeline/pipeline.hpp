// kalis::pipeline — sharded multi-worker packet-ingestion engine with
// backpressure (DESIGN.md §7).
//
// Decouples packet capture from detection:
//
//   producers ──enqueue──▶ per-shard bounded MPSC rings ──▶ worker threads
//        (hash by link-layer source)        (batch dequeue)     │
//                                                               ▼
//                                                      shard PacketEngine
//                                                               │ alerts
//                                                               ▼
//                      timestamp-ordered merge ──▶ alert sink / SIEM export
//
// Sharding is by link-layer source address (pipeline/shard_key.hpp), so all
// per-device state — flood windows, watchdog counters, DataStore windows —
// stays on one worker and no detection structure needs a lock.
//
// The merge stage buffers each shard's alerts as an already-sorted run
// (engines emit in nondecreasing time order) and releases the smallest
// (time, shard) head only once every live shard's watermark has passed its
// timestamp, so the emitted stream is totally ordered — exactly the
// (time, shard, seq) order the original per-alert min-heap produced — and
// identical across runs regardless of thread interleaving. Quiet batches
// (no fresh alerts, nothing buffered anywhere) skip the merge lock
// entirely: the shard just publishes its watermark with one atomic store.
//
// Modes:
//   deterministic = true   single shard, processed synchronously on the
//                          caller thread — bit-reproducible, used by ctest
//                          and the discrete-event simulator.
//   deterministic = false  `workers` threads, each owning one shard.
//
// With Options::knowledgeExchange on, shard engines additionally swap
// collective knowggets through a KnowledgeExchange at batch boundaries
// (knowledge_exchange.hpp, DESIGN.md §8), so shards share the paper's
// collective knowledge without any cross-thread access to a KnowledgeBase.
//
// Lifecycle: construct → (setAlertSink) → start() → enqueue()* → stop().
// stop() closes the rings, drains every queued packet (drain-on-shutdown),
// joins the workers and flushes the merge stage. A Pipeline is one-shot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/packet_source.hpp"
#include "pipeline/engine.hpp"
#include "pipeline/knowledge_exchange.hpp"
#include "pipeline/ring_buffer.hpp"
#include "pipeline/shard_key.hpp"
#include "util/metrics.hpp"
#include "util/types.hpp"

namespace kalis::pipeline {

/// Injected ingestion-level faults (kalis::chaos, DESIGN.md §9): wall-clock
/// worker stalls at batch boundaries that model a slow consumer and drive
/// the rings into their configured drop policy under sustained producers.
/// Zero values = off. Threaded mode only — the deterministic caller-thread
/// path has no consumer to stall.
struct IngestFaults {
  std::size_t stallEveryBatches = 0;  ///< stall after every Nth batch (0=off)
  std::uint64_t stallMicros = 0;      ///< wall-clock microseconds per stall
  bool enabled() const { return stallEveryBatches > 0 && stallMicros > 0; }
};

struct Options {
  /// Worker threads (= shards). Clamped to >= 1; forced to 1 by
  /// `deterministic`.
  std::size_t workers = 4;
  std::size_t queueCapacity = 4096;  ///< ring slots per shard
  std::size_t maxBatch = 64;         ///< packets per worker dequeue
  Backpressure policy = Backpressure::kBlock;
  /// Single-shard caller-thread mode: enqueue() runs the engine inline and
  /// emits alerts immediately, bit-identical to feeding the engine
  /// directly.
  bool deterministic = false;
  /// Cross-shard collective knowledge exchange (DESIGN.md §8). Off by
  /// default: shards then keep fully independent knowledge bases, exactly
  /// the pre-exchange behavior.
  bool knowledgeExchange = false;
  /// Minimum virtual-time spacing between exchange drains on a shard — the
  /// multi-worker analogue of KalisNode::Options::peerSyncLatency. Remote
  /// knowggets are applied at the first batch boundary after the shard's
  /// clock advances past this interval, bounding staleness to roughly
  /// (interval + one batch span). Publishes are never delayed.
  Duration knowledgeSyncInterval = milliseconds(10);
  /// Ring slots per shard exchange inbox (in-flight remote knowggets).
  std::size_t exchangeCapacity = 1024;
  /// Injected consumer stalls (off by default; see IngestFaults).
  IngestFaults faults;
};

class Pipeline {
 public:
  Pipeline(Options options, EngineFactory factory);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Receives every merged alert, in nondecreasing time order. Threaded
  /// mode invokes the sink from worker threads, but never concurrently
  /// (serialized under the merge lock). Set before start().
  void setAlertSink(std::function<void(const ids::Alert&)> sink);

  /// Spawns the workers (threaded mode) or builds the shard engine
  /// (deterministic mode). Call once.
  void start();
  bool started() const { return started_; }
  bool stopped() const { return stopped_; }

  /// Hash-routes the packet to its shard. Returns true iff this packet was
  /// accepted (under kDropOldest an *older* packet may have been evicted —
  /// see droppedOldest()). Threaded mode: callable from any thread, also
  /// before start() (packets buffer in the rings). Deterministic mode:
  /// caller thread only, after start().
  bool enqueue(const net::CapturedPacket& pkt);

  /// Batched enqueue: hash-groups `count` packets by shard and pushes each
  /// group with ONE ring lock acquisition and at most one worker wake-up
  /// (BoundedRing::pushBatch) — the producer-side fast path for replay
  /// loops and capture bursts. Per-packet semantics (acceptance, eviction
  /// order, loss tallies, per-source FIFO) are identical to calling
  /// enqueue() in order. Returns the number of packets accepted. Same
  /// threading contract as enqueue(); deterministic mode processes the
  /// batch inline, one packet at a time, bit-identically.
  std::size_t enqueueBatch(const net::CapturedPacket* pkts, std::size_t count);

  /// Unified ingestion seam: drains a PacketSource (simulator capture, KTRC
  /// trace, pcap file) to exhaustion through enqueueBatch() in 1024-packet
  /// chunks. Returns the number of packets accepted. Same threading contract
  /// as enqueue(). enqueue()/enqueueBatch() remain the per-packet/per-burst
  /// primitives underneath this seam.
  std::size_t enqueueFrom(net::PacketSource& source);

  /// Drains every queued packet, joins the workers, runs engine finish()
  /// and flushes the merge stage. Idempotent.
  void stop();

  /// All merged alerts, in emission order. Stable once stop() returned.
  const std::vector<ids::Alert>& alerts() const { return merge_.emitted; }

  std::size_t shardCount() const { return shards_.size(); }
  const Options& options() const { return options_; }

  /// One coherent counter snapshot (exact while producers are quiescent) —
  /// replaces the per-counter getters below.
  struct Stats {
    std::uint64_t enqueued = 0;       ///< packets accepted into rings
    std::uint64_t processed = 0;      ///< packets handed to engines
    std::uint64_t droppedNewest = 0;  ///< rejected incoming packets
    std::uint64_t droppedOldest = 0;  ///< evicted queued packets
    std::uint64_t blockedPushes = 0;  ///< pushes that waited for room
    std::uint64_t alertsEmitted = 0;  ///< alerts released by the merge stage
    // Knowledge exchange (all zero when Options::knowledgeExchange is off).
    std::uint64_t knowledgePublished = 0;  ///< collective changes handed over
    std::uint64_t knowledgeApplied = 0;    ///< remote knowggets accepted
    std::uint64_t knowledgeRejected = 0;   ///< refused by the one-way rule
    std::uint64_t knowledgeDroppedInFlight = 0;  ///< inbox evictions
    std::uint64_t dropped() const { return droppedNewest + droppedOldest; }
  };
  Stats stats() const;

  /// Collective knowggets visible to `shard`'s engine when it finished
  /// (its own plus applied remote entries). Populated by stop(); empty for
  /// engines without knowledge.
  const std::vector<ids::Knowgget>& collectiveKnowledge(std::size_t shard) const {
    return shards_[shard]->finalKnowledge;
  }

  /// Bounded-staleness watermark: highest publisher clock applied into
  /// `shard` so far. 0 when the exchange is off.
  SimTime knowledgeWatermark(std::size_t shard) const {
    return exchange_ ? exchange_->appliedWatermark(shard) : 0;
  }

  /// Appends pipeline + per-shard ring metrics under `prefix`
  /// (e.g. "pipeline"). Call while quiescent (before start or after stop).
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : ring(capacity) {}
    PacketRing ring;
    std::unique_ptr<PacketEngine> engine;
    std::thread worker;
    /// Engine clock at the last exchange drain (sync-interval gate).
    SimTime lastKnowledgeSync = 0;
    /// Engine's final collective view, captured just before teardown.
    std::vector<ids::Knowgget> finalKnowledge;
    /// Reused drain buffer for collectFrom (owning worker only).
    std::vector<ids::Alert> alertScratch;
  };

  /// Timestamp-ordered, watermark-gated alert merge over per-shard runs.
  ///
  /// Each shard appends its drained alerts — already sorted, since engines
  /// emit in nondecreasing time order — to a private run buffer; the flush
  /// is a k-way merge of the run heads, releasing the smallest
  /// (time, shard) while it sorts strictly below every live shard's
  /// watermark. Within a shard the run IS seq order, so the emitted stream
  /// equals the old per-alert (time, shard, seq) heap order while touching
  /// each alert O(shards) instead of O(log pending) heap operations — and
  /// the common quiet batch (no fresh alerts, nothing buffered) never takes
  /// the lock at all: it publishes the shard watermark with one relaxed-
  /// free atomic store and returns.
  struct MergeStage {
    /// One shard's buffered run: FIFO window [head, run.size()).
    struct ShardRun {
      std::vector<ids::Alert> run;
      std::size_t head = 0;
      bool empty() const { return head >= run.size(); }
      const ids::Alert& front() const { return run[head]; }
    };
    std::mutex mu;
    std::vector<ShardRun> runs;  ///< per-shard sorted alert runs (mu)
    /// Per-shard watermark: written by the owning worker (release), read by
    /// whichever thread flushes. Stored via unique_ptr — atomics don't move.
    std::vector<std::unique_ptr<std::atomic<SimTime>>> watermark;
    /// Total buffered-but-unreleased alerts across all runs; lets quiet
    /// batches skip the lock when there is provably nothing to flush.
    std::atomic<std::uint64_t> pending{0};
    std::atomic<std::uint64_t> emittedCount{0};
    std::vector<char> done;  ///< mu
    std::vector<ids::Alert> emitted;
    std::function<void(const ids::Alert&)> sink;

    void init(std::size_t shards);

    /// Moves the drained alerts into `shard`'s run; `alerts` is left with
    /// moved-from elements (the caller clears and reuses it — pooled
    /// scratch). Lock-free when `alerts` is empty, nothing is buffered
    /// anywhere and the shard is not finishing.
    void offer(std::size_t shard, std::vector<ids::Alert>& alerts,
               SimTime shardWatermark, bool shardDone);

   private:
    void flushLocked();
  };

  void workerMain(std::size_t shard);
  void collectFrom(std::size_t shard, bool shardDone);
  /// Publishes the shard engine's pending collective changes into the
  /// exchange and — when forced or the sync interval elapsed — applies
  /// queued remote knowggets. Called at batch boundaries on the owning
  /// worker (or the caller thread in deterministic mode).
  void syncShardKnowledge(std::size_t shard, bool force);

  Options options_;
  EngineFactory factory_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<KnowledgeExchange> exchange_;  ///< null when exchange off
  MergeStage merge_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<PacketRing::Item> detBatch_;  ///< deterministic-mode scratch
};

}  // namespace kalis::pipeline
