// Flow-affinity shard routing: hash a captured packet's link-layer source
// address without paying for a full dissection.
//
// Per-device detection state (flood windows, watchdog counters, traffic
// statistics) lives on exactly one worker because every packet from a given
// transmitter hashes to the same shard. The extractors below peek at the
// fixed header offsets of each medium and mirror the logical-source rules
// of the real decoders (net::decodeWifi / decodeIeee802154 / decodeBleAdv),
// so shardOf(pkt) agrees with Dissection::linkSource() on every frame the
// dissector can parse. Unparseable frames fall back to hashing the whole
// raw buffer — garbage still lands deterministically on some shard.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/entity_ref.hpp"
#include "net/packet.hpp"

namespace kalis::pipeline {

/// Link-layer source identity peeked from the fixed header offsets, without
/// dissecting. Equals Dissection::linkSourceRef() on every frame the
/// dissector can parse; EntityRef::none() when the frame is unrecognizable.
net::EntityRef peekLinkSource(const net::CapturedPacket& pkt);

/// 64-bit shard-routing key: EntityRef::key() of the peeked link-layer
/// source, so packets with equal Dissection::linkSourceRef() yield equal
/// keys. Unparseable frames fall back to an FNV-1a hash of the raw buffer.
std::uint64_t sourceShardKey(const net::CapturedPacket& pkt);

/// Shard index for a packet: sourceShardKey(pkt) % shardCount (0 when
/// shardCount <= 1).
std::size_t shardOf(const net::CapturedPacket& pkt, std::size_t shardCount);

}  // namespace kalis::pipeline
