#include "pipeline/pipeline.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace kalis::pipeline {

bool Pipeline::MergeStage::Later::operator()(const Pending& a,
                                             const Pending& b) const {
  if (a.alert.time != b.alert.time) return a.alert.time > b.alert.time;
  if (a.shard != b.shard) return a.shard > b.shard;
  return a.seq > b.seq;
}

Pipeline::Pipeline(Options options, EngineFactory factory)
    : options_(options), factory_(std::move(factory)) {
  if (options_.deterministic) options_.workers = 1;
  if (options_.workers == 0) options_.workers = 1;
  shards_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.queueCapacity));
  }
  merge_.watermark.assign(shards_.size(), 0);
  merge_.done.assign(shards_.size(), 0);
  merge_.nextSeq.assign(shards_.size(), 0);
}

Pipeline::~Pipeline() { stop(); }

void Pipeline::setAlertSink(std::function<void(const ids::Alert&)> sink) {
  merge_.sink = std::move(sink);
}

void Pipeline::start() {
  if (started_) return;
  started_ = true;
  if (options_.deterministic) {
    shards_[0]->engine = factory_(0);
    return;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { workerMain(i); });
  }
}

bool Pipeline::enqueue(const net::CapturedPacket& pkt) {
  const std::size_t idx = shardOf(pkt, shards_.size());
  Shard& shard = *shards_[idx];
  if (options_.deterministic) {
    if (!started_ || stopped_) {
      KALIS_WARN("pipeline",
                 "deterministic enqueue outside start()/stop() window");
      return false;
    }
    // Route through the ring so backpressure counters behave identically,
    // then drain synchronously — the ring never holds more than one packet.
    const PacketRing::PushResult r = shard.ring.push(pkt, options_.policy);
    if (r == PacketRing::PushResult::kDroppedNewest ||
        r == PacketRing::PushResult::kClosed) {
      return false;
    }
    detBatch_.clear();
    shard.ring.popBatch(detBatch_, 1);
    shard.engine->onPacket(detBatch_[0].pkt);
    collectFrom(idx, /*shardDone=*/false);
    return true;
  }
  const PacketRing::PushResult r = shard.ring.push(pkt, options_.policy);
  return r == PacketRing::PushResult::kOk ||
         r == PacketRing::PushResult::kOkBlocked ||
         r == PacketRing::PushResult::kDroppedOldest;
}

void Pipeline::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (options_.deterministic) {
    shards_[0]->ring.close();
    shards_[0]->engine->finish();
    collectFrom(0, /*shardDone=*/true);
    return;
  }
  for (auto& shard : shards_) shard->ring.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void Pipeline::workerMain(std::size_t shardIdx) {
  Shard& shard = *shards_[shardIdx];
  // The engine is created on its owning thread, so thread-ownership
  // checkers inside KnowledgeBase / DataStore bind to this worker.
  shard.engine = factory_(shardIdx);
  std::vector<PacketRing::Item> batch;
  batch.reserve(options_.maxBatch);
  for (;;) {
    batch.clear();
    const std::size_t n = shard.ring.popBatch(batch, options_.maxBatch);
    if (n == 0) break;  // closed and drained
    for (const PacketRing::Item& item : batch) {
      shard.engine->onPacket(item.pkt);
    }
    collectFrom(shardIdx, /*shardDone=*/false);
  }
  shard.engine->finish();
  collectFrom(shardIdx, /*shardDone=*/true);
  // Tear the engine down here too: shard state must be built, used and
  // destroyed by its one owning thread (KB/DataStore assert this).
  shard.engine.reset();
}

void Pipeline::collectFrom(std::size_t shardIdx, bool shardDone) {
  Shard& shard = *shards_[shardIdx];
  merge_.offer(shardIdx, shard.engine->takeAlerts(), shard.engine->watermark(),
               shardDone);
}

void Pipeline::MergeStage::offer(std::size_t shard,
                                 std::vector<ids::Alert> alerts,
                                 SimTime shardWatermark, bool shardDone) {
  std::lock_guard<std::mutex> lock(mu);
  for (ids::Alert& alert : alerts) {
    heap.push_back(Pending{std::move(alert), shard, nextSeq[shard]++});
    std::push_heap(heap.begin(), heap.end(), MergeStage::Later{});
  }
  if (shardWatermark > watermark[shard]) watermark[shard] = shardWatermark;
  if (shardDone) done[shard] = 1;
  flushLocked();
}

void Pipeline::MergeStage::flushLocked() {
  // An alert is releasable once no live shard can still produce one that
  // sorts before it: strictly below the minimum live watermark (a shard at
  // watermark t may still emit alerts stamped exactly t).
  SimTime minLive = kSimTimeMax;
  bool allDone = true;
  for (std::size_t i = 0; i < watermark.size(); ++i) {
    if (done[i]) continue;
    allDone = false;
    minLive = std::min(minLive, watermark[i]);
  }
  while (!heap.empty() &&
         (allDone || heap.front().alert.time < minLive)) {
    std::pop_heap(heap.begin(), heap.end(), MergeStage::Later{});
    Pending p = std::move(heap.back());
    heap.pop_back();
    emitted.push_back(p.alert);
    if (sink) sink(emitted.back());
  }
}

std::uint64_t Pipeline::enqueued() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ring.stats().pushed;
  return n;
}

std::uint64_t Pipeline::processed() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ring.stats().popped;
  return n;
}

std::uint64_t Pipeline::droppedNewest() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ring.stats().droppedNewest;
  return n;
}

std::uint64_t Pipeline::droppedOldest() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ring.stats().droppedOldest;
  return n;
}

std::uint64_t Pipeline::blockedPushes() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ring.stats().blockedPushes;
  return n;
}

void Pipeline::collectMetrics(obs::Registry& reg,
                              const std::string& prefix) const {
  reg.counter(prefix + ".shards", shards_.size());
  reg.counter(prefix + ".enqueued", enqueued());
  reg.counter(prefix + ".processed", processed());
  reg.counter(prefix + ".dropped_newest", droppedNewest());
  reg.counter(prefix + ".dropped_oldest", droppedOldest());
  reg.counter(prefix + ".blocked_pushes", blockedPushes());
  reg.counter(prefix + ".alerts_emitted", merge_.emitted.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->ring.collectMetrics(
        reg, prefix + ".shard." + std::to_string(i) + ".ring");
  }
}

}  // namespace kalis::pipeline
