#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "util/log.hpp"

namespace kalis::pipeline {

Pipeline::Pipeline(Options options, EngineFactory factory)
    : options_(options), factory_(std::move(factory)) {
  if (options_.deterministic) options_.workers = 1;
  if (options_.workers == 0) options_.workers = 1;
  shards_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.queueCapacity));
  }
  merge_.init(shards_.size());
  if (options_.knowledgeExchange) {
    KnowledgeExchange::Options xo;
    xo.shards = shards_.size();
    xo.inboxCapacity = options_.exchangeCapacity;
    exchange_ = std::make_unique<KnowledgeExchange>(xo);
  }
}

Pipeline::~Pipeline() { stop(); }

void Pipeline::setAlertSink(std::function<void(const ids::Alert&)> sink) {
  merge_.sink = std::move(sink);
}

void Pipeline::start() {
  if (started_) return;
  started_ = true;
  if (options_.deterministic) {
    shards_[0]->engine = factory_(0);
    return;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { workerMain(i); });
  }
}

bool Pipeline::enqueue(const net::CapturedPacket& pkt) {
  const std::size_t idx = shardOf(pkt, shards_.size());
  Shard& shard = *shards_[idx];
  if (options_.deterministic) {
    if (!started_ || stopped_) {
      KALIS_WARN("pipeline",
                 "deterministic enqueue outside start()/stop() window");
      return false;
    }
    // Route through the ring so backpressure counters behave identically,
    // then drain synchronously — the ring never holds more than one packet.
    const PacketRing::PushResult r = shard.ring.push(pkt, options_.policy);
    if (r == PacketRing::PushResult::kDroppedNewest ||
        r == PacketRing::PushResult::kClosed) {
      return false;
    }
    detBatch_.clear();
    shard.ring.popBatch(detBatch_, 1);
    const net::CapturedPacket* one = &detBatch_[0].value;
    shard.engine->onBatch(&one, 1);
    syncShardKnowledge(idx, /*force=*/false);
    collectFrom(idx, /*shardDone=*/false);
    return true;
  }
  const PacketRing::PushResult r = shard.ring.push(pkt, options_.policy);
  return r == PacketRing::PushResult::kOk ||
         r == PacketRing::PushResult::kOkBlocked ||
         r == PacketRing::PushResult::kDroppedOldest;
}

std::size_t Pipeline::enqueueBatch(const net::CapturedPacket* pkts,
                                   std::size_t count) {
  if (options_.deterministic) {
    // Inline processing is inherently per-packet; keep it bit-identical.
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (enqueue(pkts[i])) ++accepted;
    }
    return accepted;
  }
  // Group by shard, preserving arrival order within each group (stable
  // bucket append), then push every group under one ring lock. Local
  // buffers keep the call safe from any number of concurrent producers.
  std::vector<std::vector<const net::CapturedPacket*>> groups(shards_.size());
  for (std::size_t i = 0; i < count; ++i) {
    groups[shardOf(pkts[i], shards_.size())].push_back(&pkts[i]);
  }
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    const PacketRing::BatchPushResult r = shards_[s]->ring.pushBatch(
        groups[s].data(), groups[s].size(), options_.policy);
    accepted += r.accepted;
  }
  return accepted;
}

std::size_t Pipeline::enqueueFrom(net::PacketSource& source) {
  constexpr std::size_t kChunk = 1024;
  std::vector<net::CapturedPacket> staging;
  staging.reserve(kChunk);
  std::size_t accepted = 0;
  for (;;) {
    staging.clear();
    while (staging.size() < kChunk) {
      auto pkt = source.next();
      if (!pkt) break;
      staging.push_back(std::move(*pkt));
    }
    if (staging.empty()) break;
    accepted += enqueueBatch(staging.data(), staging.size());
    if (staging.size() < kChunk) break;  // source exhausted mid-chunk
  }
  return accepted;
}

void Pipeline::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (options_.deterministic) {
    Shard& shard = *shards_[0];
    shard.ring.close();
    shard.engine->finish();
    if (exchange_) {
      // Single shard: publishes have no receivers, but the counters and the
      // reconciliation protocol stay uniform with threaded mode.
      syncShardKnowledge(0, /*force=*/true);
      exchange_->finishShard(0, shard.engine->collectiveKnowledge(true));
      exchange_->waitAllFinished();
      exchange_->applyFinalFrom(0, [&shard](const ids::Knowgget& k) {
        return shard.engine->applyRemoteKnowledge(k);
      });
    }
    shard.finalKnowledge = shard.engine->collectiveKnowledge(false);
    collectFrom(0, /*shardDone=*/true);
    return;
  }
  for (auto& shard : shards_) shard->ring.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void Pipeline::workerMain(std::size_t shardIdx) {
  Shard& shard = *shards_[shardIdx];
  // The engine is created on its owning thread, so thread-ownership
  // checkers inside KnowledgeBase / DataStore bind to this worker.
  shard.engine = factory_(shardIdx);
  std::vector<PacketRing::Item> batch;
  batch.reserve(options_.maxBatch);
  std::vector<const net::CapturedPacket*> pkts;
  pkts.reserve(options_.maxBatch);
  std::uint64_t batches = 0;
  for (;;) {
    batch.clear();
    const std::size_t n = shard.ring.popBatch(batch, options_.maxBatch);
    if (n == 0) break;  // closed and drained
    // Hand the whole dequeue to the engine at once: the Items own the
    // capture buffers for the duration of the call, so a zero-copy engine
    // can dissect in place against its batch arena.
    pkts.clear();
    for (const PacketRing::Item& item : batch) pkts.push_back(&item.value);
    shard.engine->onBatch(pkts.data(), pkts.size());
    syncShardKnowledge(shardIdx, /*force=*/false);
    collectFrom(shardIdx, /*shardDone=*/false);
    // Injected slow-consumer stall (chaos): sleep after every Nth batch so
    // sustained producers push the ring into its drop policy.
    ++batches;
    if (options_.faults.enabled() &&
        batches % options_.faults.stallEveryBatches == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.faults.stallMicros));
    }
  }
  shard.engine->finish();
  if (exchange_) {
    // Shutdown reconciliation (knowledge_exchange.hpp): flush our pending
    // changes, deposit our final own collective set, then block until every
    // shard has reached the same point. publish() never blocks (drop-oldest
    // inboxes), so late publishers cannot deadlock against parked waiters;
    // anything evicted from an inbox while we slept is repaired by the
    // final-snapshot application below. One post-rendezvous drain picks up
    // all remaining in-flight items (each publish happened-before its
    // shard's finishShard).
    syncShardKnowledge(shardIdx, /*force=*/true);
    exchange_->finishShard(shardIdx, shard.engine->collectiveKnowledge(true));
    exchange_->waitAllFinished();
    syncShardKnowledge(shardIdx, /*force=*/true);
    exchange_->applyFinalFrom(shardIdx, [&shard](const ids::Knowgget& k) {
      return shard.engine->applyRemoteKnowledge(k);
    });
  }
  shard.finalKnowledge = shard.engine->collectiveKnowledge(false);
  collectFrom(shardIdx, /*shardDone=*/true);
  // Tear the engine down here too: shard state must be built, used and
  // destroyed by its one owning thread (KB/DataStore assert this).
  shard.engine.reset();
}

void Pipeline::syncShardKnowledge(std::size_t shardIdx, bool force) {
  Shard& shard = *shards_[shardIdx];
  // Always drain the engine's update buffer — even with the exchange off —
  // so it cannot grow without bound over a long run.
  std::vector<ids::Knowgget> updates = shard.engine->takeCollectiveUpdates();
  if (!exchange_) return;
  const SimTime now = shard.engine->watermark();
  for (const ids::Knowgget& k : updates) {
    exchange_->publish(shardIdx, k, now);
  }
  if (!force && now - shard.lastKnowledgeSync < options_.knowledgeSyncInterval) {
    return;
  }
  shard.lastKnowledgeSync = now;
  exchange_->drain(shardIdx, [&shard](const RemoteKnowgget& rk) {
    return shard.engine->applyRemoteKnowledge(rk.knowgget);
  });
}

void Pipeline::collectFrom(std::size_t shardIdx, bool shardDone) {
  Shard& shard = *shards_[shardIdx];
  // Pooled drain: the scratch vector (and the engine's internal buffer)
  // keep their capacity across batches, so a quiet batch costs zero
  // allocations here.
  shard.alertScratch.clear();
  shard.engine->drainAlerts(shard.alertScratch);
  merge_.offer(shardIdx, shard.alertScratch, shard.engine->watermark(),
               shardDone);
}

void Pipeline::MergeStage::init(std::size_t shards) {
  runs.resize(shards);
  done.assign(shards, 0);
  watermark.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    watermark.push_back(std::make_unique<std::atomic<SimTime>>(0));
  }
}

void Pipeline::MergeStage::offer(std::size_t shard,
                                 std::vector<ids::Alert>& alerts,
                                 SimTime shardWatermark, bool shardDone) {
  // The shard's worker is the only writer of its watermark slot, so a plain
  // release store publishes it; flushers read with acquire under the lock.
  std::atomic<SimTime>& wm = *watermark[shard];
  if (alerts.empty()) {
    // No withheld alerts from this shard, so publishing the watermark ahead
    // of the lock is safe: the engine promises no future alert sorts below
    // it. Quiet-batch fast path: nothing new here and nothing buffered
    // anywhere means no flush can release an alert — skip the merge lock
    // entirely. (If another shard buffers concurrently, its own offer
    // flushes, and it either sees our watermark store or catches up on its
    // next batch.)
    if (shardWatermark > wm.load(std::memory_order_relaxed)) {
      wm.store(shardWatermark, std::memory_order_release);
    }
    if (!shardDone && pending.load(std::memory_order_acquire) == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    if (shardDone) done[shard] = 1;
    flushLocked();
    return;
  }
  std::lock_guard<std::mutex> lock(mu);
  ShardRun& dst = runs[shard];
  // Engines emit alerts in nondecreasing time order (PacketEngine
  // contract), which is what makes the run-merge equivalent to the old
  // per-alert heap; cheap debug check at the batch seam.
  assert(dst.empty() || dst.run.back().time <= alerts.front().time);
  if (dst.empty() && !dst.run.empty()) {
    dst.run.clear();  // fully released: recycle capacity
    dst.head = 0;
  }
  for (ids::Alert& alert : alerts) {
    assert(&alert == &alerts.front() || (&alert - 1)->time <= alert.time);
    dst.run.push_back(std::move(alert));
  }
  pending.fetch_add(alerts.size(), std::memory_order_release);
  // Publish the watermark only now that the alerts it vouches for are
  // buffered. Storing it before the append would let a flusher already
  // holding the lock treat this shard as having nothing below the new
  // watermark and release another shard's later alert ahead of ours.
  if (shardWatermark > wm.load(std::memory_order_relaxed)) {
    wm.store(shardWatermark, std::memory_order_release);
  }
  if (shardDone) done[shard] = 1;
  flushLocked();
}

void Pipeline::MergeStage::flushLocked() {
  // An alert is releasable once no live shard can still produce one that
  // sorts before it: strictly below the minimum live watermark (a shard at
  // watermark t may still emit alerts stamped exactly t).
  SimTime minLive = kSimTimeMax;
  bool allDone = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (done[i]) continue;
    allDone = false;
    minLive = std::min(minLive, watermark[i]->load(std::memory_order_acquire));
  }
  std::uint64_t released = 0;
  for (;;) {
    // k-way merge step: smallest (time, shard) among the run heads. Within
    // a shard the run is already (time, seq)-sorted, so this reproduces the
    // old heap's (time, shard, seq) total order exactly.
    ShardRun* best = nullptr;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      ShardRun& r = runs[i];
      if (r.empty()) continue;
      if (!best || r.front().time < best->front().time) best = &r;
    }
    if (!best) break;
    if (!allDone && best->front().time >= minLive) break;
    emitted.push_back(std::move(best->run[best->head]));
    ++best->head;
    ++released;
    if (sink) sink(emitted.back());
  }
  if (released > 0) {
    pending.fetch_sub(released, std::memory_order_release);
    emittedCount.fetch_add(released, std::memory_order_release);
  }
}

Pipeline::Stats Pipeline::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    const PacketRing::Stats rs = shard->ring.stats();
    s.enqueued += rs.pushed;
    s.processed += rs.popped;
    s.droppedNewest += rs.droppedNewest;
    s.droppedOldest += rs.droppedOldest;
    s.blockedPushes += rs.blockedPushes;
  }
  s.alertsEmitted = merge_.emittedCount.load(std::memory_order_acquire);
  if (exchange_) {
    const KnowledgeExchange::Stats xs = exchange_->stats();
    s.knowledgePublished = xs.published;
    s.knowledgeApplied = xs.applied;
    s.knowledgeRejected = xs.rejected;
    s.knowledgeDroppedInFlight = xs.droppedInFlight;
  }
  return s;
}

void Pipeline::collectMetrics(obs::Registry& reg,
                              const std::string& prefix) const {
  const Stats s = stats();
  reg.counter(prefix + ".shards", shards_.size());
  reg.counter(prefix + ".enqueued", s.enqueued);
  reg.counter(prefix + ".processed", s.processed);
  reg.counter(prefix + ".dropped_newest", s.droppedNewest);
  reg.counter(prefix + ".dropped_oldest", s.droppedOldest);
  reg.counter(prefix + ".blocked_pushes", s.blockedPushes);
  reg.counter(prefix + ".alerts_emitted", s.alertsEmitted);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->ring.collectMetrics(
        reg, prefix + ".shard." + std::to_string(i) + ".ring");
  }
  if (exchange_) exchange_->collectMetrics(reg, prefix + ".exchange");
}

}  // namespace kalis::pipeline
