#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "util/log.hpp"

namespace kalis::pipeline {

bool Pipeline::MergeStage::Later::operator()(const Pending& a,
                                             const Pending& b) const {
  if (a.alert.time != b.alert.time) return a.alert.time > b.alert.time;
  if (a.shard != b.shard) return a.shard > b.shard;
  return a.seq > b.seq;
}

Pipeline::Pipeline(Options options, EngineFactory factory)
    : options_(options), factory_(std::move(factory)) {
  if (options_.deterministic) options_.workers = 1;
  if (options_.workers == 0) options_.workers = 1;
  shards_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.queueCapacity));
  }
  merge_.watermark.assign(shards_.size(), 0);
  merge_.done.assign(shards_.size(), 0);
  merge_.nextSeq.assign(shards_.size(), 0);
  if (options_.knowledgeExchange) {
    KnowledgeExchange::Options xo;
    xo.shards = shards_.size();
    xo.inboxCapacity = options_.exchangeCapacity;
    exchange_ = std::make_unique<KnowledgeExchange>(xo);
  }
}

Pipeline::~Pipeline() { stop(); }

void Pipeline::setAlertSink(std::function<void(const ids::Alert&)> sink) {
  merge_.sink = std::move(sink);
}

void Pipeline::start() {
  if (started_) return;
  started_ = true;
  if (options_.deterministic) {
    shards_[0]->engine = factory_(0);
    return;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { workerMain(i); });
  }
}

bool Pipeline::enqueue(const net::CapturedPacket& pkt) {
  const std::size_t idx = shardOf(pkt, shards_.size());
  Shard& shard = *shards_[idx];
  if (options_.deterministic) {
    if (!started_ || stopped_) {
      KALIS_WARN("pipeline",
                 "deterministic enqueue outside start()/stop() window");
      return false;
    }
    // Route through the ring so backpressure counters behave identically,
    // then drain synchronously — the ring never holds more than one packet.
    const PacketRing::PushResult r = shard.ring.push(pkt, options_.policy);
    if (r == PacketRing::PushResult::kDroppedNewest ||
        r == PacketRing::PushResult::kClosed) {
      return false;
    }
    detBatch_.clear();
    shard.ring.popBatch(detBatch_, 1);
    const net::CapturedPacket* one = &detBatch_[0].value;
    shard.engine->onBatch(&one, 1);
    syncShardKnowledge(idx, /*force=*/false);
    collectFrom(idx, /*shardDone=*/false);
    return true;
  }
  const PacketRing::PushResult r = shard.ring.push(pkt, options_.policy);
  return r == PacketRing::PushResult::kOk ||
         r == PacketRing::PushResult::kOkBlocked ||
         r == PacketRing::PushResult::kDroppedOldest;
}

void Pipeline::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (options_.deterministic) {
    Shard& shard = *shards_[0];
    shard.ring.close();
    shard.engine->finish();
    if (exchange_) {
      // Single shard: publishes have no receivers, but the counters and the
      // reconciliation protocol stay uniform with threaded mode.
      syncShardKnowledge(0, /*force=*/true);
      exchange_->finishShard(0, shard.engine->collectiveKnowledge(true));
      exchange_->applyFinalFrom(0, [&shard](const ids::Knowgget& k) {
        return shard.engine->applyRemoteKnowledge(k);
      });
    }
    shard.finalKnowledge = shard.engine->collectiveKnowledge(false);
    collectFrom(0, /*shardDone=*/true);
    return;
  }
  for (auto& shard : shards_) shard->ring.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void Pipeline::workerMain(std::size_t shardIdx) {
  Shard& shard = *shards_[shardIdx];
  // The engine is created on its owning thread, so thread-ownership
  // checkers inside KnowledgeBase / DataStore bind to this worker.
  shard.engine = factory_(shardIdx);
  std::vector<PacketRing::Item> batch;
  batch.reserve(options_.maxBatch);
  std::vector<const net::CapturedPacket*> pkts;
  pkts.reserve(options_.maxBatch);
  std::uint64_t batches = 0;
  for (;;) {
    batch.clear();
    const std::size_t n = shard.ring.popBatch(batch, options_.maxBatch);
    if (n == 0) break;  // closed and drained
    // Hand the whole dequeue to the engine at once: the Items own the
    // capture buffers for the duration of the call, so a zero-copy engine
    // can dissect in place against its batch arena.
    pkts.clear();
    for (const PacketRing::Item& item : batch) pkts.push_back(&item.value);
    shard.engine->onBatch(pkts.data(), pkts.size());
    syncShardKnowledge(shardIdx, /*force=*/false);
    collectFrom(shardIdx, /*shardDone=*/false);
    // Injected slow-consumer stall (chaos): sleep after every Nth batch so
    // sustained producers push the ring into its drop policy.
    ++batches;
    if (options_.faults.enabled() &&
        batches % options_.faults.stallEveryBatches == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.faults.stallMicros));
    }
  }
  shard.engine->finish();
  if (exchange_) {
    // Shutdown reconciliation (knowledge_exchange.hpp): flush our pending
    // changes, deposit our final own collective set, then keep draining
    // while the other shards reach the same point — a blocked wait here
    // would strand their publishes. Once everyone finished, one last drain
    // picks up all remaining in-flight items (each publish happened-before
    // its shard's finishShard), and applying the final snapshots repairs
    // anything the drop-oldest inboxes evicted.
    syncShardKnowledge(shardIdx, /*force=*/true);
    exchange_->finishShard(shardIdx, shard.engine->collectiveKnowledge(true));
    while (!exchange_->waitAllFinished(std::chrono::milliseconds(1))) {
      syncShardKnowledge(shardIdx, /*force=*/true);
    }
    syncShardKnowledge(shardIdx, /*force=*/true);
    exchange_->applyFinalFrom(shardIdx, [&shard](const ids::Knowgget& k) {
      return shard.engine->applyRemoteKnowledge(k);
    });
  }
  shard.finalKnowledge = shard.engine->collectiveKnowledge(false);
  collectFrom(shardIdx, /*shardDone=*/true);
  // Tear the engine down here too: shard state must be built, used and
  // destroyed by its one owning thread (KB/DataStore assert this).
  shard.engine.reset();
}

void Pipeline::syncShardKnowledge(std::size_t shardIdx, bool force) {
  Shard& shard = *shards_[shardIdx];
  // Always drain the engine's update buffer — even with the exchange off —
  // so it cannot grow without bound over a long run.
  std::vector<ids::Knowgget> updates = shard.engine->takeCollectiveUpdates();
  if (!exchange_) return;
  const SimTime now = shard.engine->watermark();
  for (const ids::Knowgget& k : updates) {
    exchange_->publish(shardIdx, k, now);
  }
  if (!force && now - shard.lastKnowledgeSync < options_.knowledgeSyncInterval) {
    return;
  }
  shard.lastKnowledgeSync = now;
  exchange_->drain(shardIdx, [&shard](const RemoteKnowgget& rk) {
    return shard.engine->applyRemoteKnowledge(rk.knowgget);
  });
}

void Pipeline::collectFrom(std::size_t shardIdx, bool shardDone) {
  Shard& shard = *shards_[shardIdx];
  // Pooled drain: the scratch vector (and the engine's internal buffer)
  // keep their capacity across batches, so a quiet batch costs zero
  // allocations here.
  shard.alertScratch.clear();
  shard.engine->drainAlerts(shard.alertScratch);
  merge_.offer(shardIdx, shard.alertScratch, shard.engine->watermark(),
               shardDone);
}

void Pipeline::MergeStage::offer(std::size_t shard,
                                 std::vector<ids::Alert>& alerts,
                                 SimTime shardWatermark, bool shardDone) {
  std::lock_guard<std::mutex> lock(mu);
  for (ids::Alert& alert : alerts) {
    heap.push_back(Pending{std::move(alert), shard, nextSeq[shard]++});
    std::push_heap(heap.begin(), heap.end(), MergeStage::Later{});
  }
  if (shardWatermark > watermark[shard]) watermark[shard] = shardWatermark;
  if (shardDone) done[shard] = 1;
  flushLocked();
}

void Pipeline::MergeStage::flushLocked() {
  // An alert is releasable once no live shard can still produce one that
  // sorts before it: strictly below the minimum live watermark (a shard at
  // watermark t may still emit alerts stamped exactly t).
  SimTime minLive = kSimTimeMax;
  bool allDone = true;
  for (std::size_t i = 0; i < watermark.size(); ++i) {
    if (done[i]) continue;
    allDone = false;
    minLive = std::min(minLive, watermark[i]);
  }
  while (!heap.empty() &&
         (allDone || heap.front().alert.time < minLive)) {
    std::pop_heap(heap.begin(), heap.end(), MergeStage::Later{});
    Pending p = std::move(heap.back());
    heap.pop_back();
    emitted.push_back(p.alert);
    if (sink) sink(emitted.back());
  }
}

Pipeline::Stats Pipeline::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    const PacketRing::Stats rs = shard->ring.stats();
    s.enqueued += rs.pushed;
    s.processed += rs.popped;
    s.droppedNewest += rs.droppedNewest;
    s.droppedOldest += rs.droppedOldest;
    s.blockedPushes += rs.blockedPushes;
  }
  s.alertsEmitted = merge_.emitted.size();
  if (exchange_) {
    const KnowledgeExchange::Stats xs = exchange_->stats();
    s.knowledgePublished = xs.published;
    s.knowledgeApplied = xs.applied;
    s.knowledgeRejected = xs.rejected;
    s.knowledgeDroppedInFlight = xs.droppedInFlight;
  }
  return s;
}

void Pipeline::collectMetrics(obs::Registry& reg,
                              const std::string& prefix) const {
  const Stats s = stats();
  reg.counter(prefix + ".shards", shards_.size());
  reg.counter(prefix + ".enqueued", s.enqueued);
  reg.counter(prefix + ".processed", s.processed);
  reg.counter(prefix + ".dropped_newest", s.droppedNewest);
  reg.counter(prefix + ".dropped_oldest", s.droppedOldest);
  reg.counter(prefix + ".blocked_pushes", s.blockedPushes);
  reg.counter(prefix + ".alerts_emitted", s.alertsEmitted);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->ring.collectMetrics(
        reg, prefix + ".shard." + std::to_string(i) + ".ring");
  }
  if (exchange_) exchange_->collectMetrics(reg, prefix + ".exchange");
}

}  // namespace kalis::pipeline
