#include "pipeline/shard_key.hpp"

namespace kalis::pipeline {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

/// WiFi: fc(2) | duration(2) | addr1(6) | addr2(6) | addr3(6) | seqctl(2).
/// The logical source follows decodeWifi: station->AP data uses addr2,
/// AP->station data uses addr3, everything else (management, neither-DS
/// data) uses addr2.
bool wifiSource(const net::CapturedPacket& pkt, const std::uint8_t*& addr) {
  if (pkt.raw.size() < 24 + 4) return false;
  const std::uint8_t fc0 = pkt.raw[0];
  const std::uint8_t fc1 = pkt.raw[1];
  if ((fc0 & 0x03) != 0) return false;  // protocol version must be 0
  const std::uint8_t type = (fc0 >> 2) & 0x3;
  const std::uint8_t subtype = (fc0 >> 4) & 0xf;
  const bool mgmt = type == 0 && (subtype == 8 || subtype == 4 || subtype == 12);
  if (!mgmt && type != 2) return false;
  const bool toDs = (fc1 & 0x01) != 0;
  const bool fromDs = (fc1 & 0x02) != 0;
  // addr2 at offset 10, addr3 at offset 16.
  addr = pkt.raw.data() + (!mgmt && fromDs && !toDs ? 16 : 10);
  return true;
}

/// 802.15.4 (short addresses, PAN compression, as encoded here):
/// FCF(2) | seq(1) | dstPan(2) | dst16(2) | src16(2) | payload | FCS(2).
bool wpanSource(const net::CapturedPacket& pkt, const std::uint8_t*& addr) {
  if (pkt.raw.size() < 9 + 2) return false;
  addr = pkt.raw.data() + 7;
  return true;
}

/// BLE advertising: header(1) | length(1) | advAddr(6, reversed) | advData.
bool bleSource(const net::CapturedPacket& pkt, const std::uint8_t*& addr) {
  if (pkt.raw.size() < 8) return false;
  addr = pkt.raw.data() + 2;
  return true;
}

}  // namespace

net::EntityRef peekLinkSource(const net::CapturedPacket& pkt) {
  const std::uint8_t* addr = nullptr;
  switch (pkt.medium) {
    case net::Medium::kWifi:
      if (wifiSource(pkt, addr)) {
        net::Mac48 a;
        for (std::size_t i = 0; i < 6; ++i) a.bytes[i] = addr[i];
        return net::EntityRef::of(a);
      }
      break;
    case net::Medium::kIeee802154:
      if (wpanSource(pkt, addr)) {
        // src16 is little-endian on the wire.
        return net::EntityRef::of(net::Mac16{
            static_cast<std::uint16_t>(addr[0] | (addr[1] << 8))});
      }
      break;
    case net::Medium::kBluetooth:
      if (bleSource(pkt, addr)) {
        // The advertising address is transmitted in reversed byte order.
        net::Mac48 a;
        for (std::size_t i = 0; i < 6; ++i) a.bytes[i] = addr[5 - i];
        return net::EntityRef::of(a);
      }
      break;
  }
  return net::EntityRef::none();
}

std::uint64_t sourceShardKey(const net::CapturedPacket& pkt) {
  const net::EntityRef src = peekLinkSource(pkt);
  if (src.valid()) return src.key();
  // Unparseable frame: hash the whole buffer (medium-salted) so garbage
  // still lands deterministically on some shard.
  const std::uint8_t salt = static_cast<std::uint8_t>(pkt.medium);
  return fnv1a(fnv1a(kFnvOffset, &salt, 1), pkt.raw.data(), pkt.raw.size());
}

std::size_t shardOf(const net::CapturedPacket& pkt, std::size_t shardCount) {
  if (shardCount <= 1) return 0;
  return static_cast<std::size_t>(sourceShardKey(pkt) % shardCount);
}

}  // namespace kalis::pipeline
