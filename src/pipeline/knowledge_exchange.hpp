// Cross-shard collective knowledge exchange (DESIGN.md §8, paper §IV-B3/§V).
//
// PR 3 confined every shard's KnowledgeBase to its worker thread, which
// made collective knowledge — the paper's headline capability — stop at the
// shard boundary. KnowledgeExchange is the thread-safe bridge that carries
// collective knowggets between shard engines without breaking the
// lock-free-KB design:
//
//   shard i KB ──CollectiveSink──▶ engine buffer ──publish()──▶ every other
//   shard's bounded inbox ring ──drain() at batch boundaries──▶ putRemote
//   on the receiving shard's KB (one-way rule enforced there)
//
// The KBs themselves stay single-threaded: only *copies* of knowggets cross
// threads, inside BoundedRing<RemoteKnowgget> inboxes (one per shard, any
// producer / one consumer). Inboxes use the drop-oldest policy so a slow
// shard can never block or deadlock a fast one; evictions are counted as
// droppedInFlight and repaired by the shutdown reconciliation below.
//
// Staleness: each in-flight knowgget carries the publisher's shard clock
// (`publishedAt`); drain() records the high-water mark applied into each
// shard (`appliedWatermark`). The pipeline drains at every batch boundary
// whose virtual-time advance exceeds Options::knowledgeSyncInterval — the
// multi-worker mirror of the paper's `peerSyncLatency` — so application lag
// is bounded by (interval + one batch span).
//
// Shutdown reconciliation: when a shard finishes its stream it deposits its
// final *own* collective knowggets via finishShard(). Workers rendezvous on
// allFinished(), drain remaining in-flight items, then apply every other
// shard's final set in shard order (applyFinalFrom) — so all shards
// converge to the same collective view regardless of thread interleaving
// or in-flight evictions.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kalis/knowledge.hpp"
#include "pipeline/ring_buffer.hpp"
#include "util/metrics.hpp"
#include "util/types.hpp"

namespace kalis::pipeline {

/// A collective knowgget in flight between knowledge domains. `fromShard`
/// is the publishing child's index in whatever topology carries the item —
/// a shard of the flat cross-shard exchange, or a home/region of the
/// hierarchical fleet exchange (src/fleet).
struct RemoteKnowgget {
  ids::Knowgget knowgget;
  std::size_t fromShard = 0;
  SimTime publishedAt = 0;  ///< publisher's clock at publish time
};

/// One bounded drop-oldest inbox of in-flight knowggets plus its applied
/// watermark — the tier primitive shared by the flat cross-shard
/// KnowledgeExchange below and the hierarchical fleet exchange
/// (src/fleet/hier_exchange.hpp). deliver() never blocks (any thread);
/// drain() is single-consumer and advances the watermark to the highest
/// publisher clock it handed out, giving every tier the same
/// bounded-staleness accounting.
class KnowledgeInbox {
 public:
  enum class Deliver : std::uint8_t {
    kOk,            ///< accepted, ring had room
    kDroppedOldest, ///< accepted, the oldest queued item was evicted
    kClosed,        ///< rejected: the ring is closed
  };

  explicit KnowledgeInbox(std::size_t capacity) : ring_(capacity) {}

  /// Non-blocking enqueue under the drop-oldest discipline: a stalled
  /// consumer costs an eviction (repaired by the owning exchange's shutdown
  /// reconciliation), never a deadlock. Callable from any thread.
  Deliver deliver(const RemoteKnowgget& item) {
    switch (ring_.push(item, Backpressure::kDropOldest)) {
      case Ring::PushResult::kDroppedOldest:
        return Deliver::kDroppedOldest;
      case Ring::PushResult::kClosed:
        return Deliver::kClosed;
      default:
        return Deliver::kOk;
    }
  }

  /// Drains every queued item into `fn` (single consumer), then publishes
  /// the new applied watermark. Returns the number of items drained.
  std::size_t drain(const std::function<void(const RemoteKnowgget&)>& fn) {
    std::size_t drained = 0;
    SimTime watermark = watermark_.load(std::memory_order_relaxed);
    while (ring_.tryPopBatch(scratch_, kDrainBatch) > 0) {
      for (Ring::Item& item : scratch_) {
        fn(item.value);
        if (item.value.publishedAt > watermark) {
          watermark = item.value.publishedAt;
        }
      }
      drained += scratch_.size();
      scratch_.clear();
    }
    if (drained > 0) watermark_.store(watermark, std::memory_order_release);
    return drained;
  }

  /// Highest publisher clock drained so far — the bounded-staleness
  /// watermark of this inbox's receiving domain.
  SimTime appliedWatermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return ring_.capacity(); }

  /// Per-ring event tallies and kalis::obs instrumentation.
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const {
    ring_.collectMetrics(reg, prefix);
  }

  static constexpr std::size_t kDrainBatch = 64;

 private:
  using Ring = BoundedRing<RemoteKnowgget>;

  Ring ring_;
  std::atomic<SimTime> watermark_{0};
  std::vector<Ring::Item> scratch_;  ///< consumer-thread-only drain buffer
};

class KnowledgeExchange {
 public:
  struct Options {
    std::size_t shards = 1;
    std::size_t inboxCapacity = 1024;  ///< ring slots per shard inbox
  };

  /// Exact always-on tallies (atomics: every shard updates concurrently).
  struct Stats {
    std::uint64_t published = 0;   ///< knowggets handed to the exchange
    std::uint64_t deliveries = 0;  ///< per-peer inbox insertions
    std::uint64_t applied = 0;     ///< putRemote accepted on a receiver
    std::uint64_t rejected = 0;    ///< one-way rule / impersonation refusals
    std::uint64_t droppedInFlight = 0;  ///< evicted by inbox overflow
    /// waitAllFinished calls (both flavors). The shutdown rendezvous is a
    /// single predicate wait per worker, so this stays <= shard count — a
    /// regression here means somebody reintroduced a finish-poll loop.
    std::uint64_t finishWaits = 0;
  };

  explicit KnowledgeExchange(Options options);

  std::size_t shardCount() const { return inboxes_.size(); }

  /// Fans one changed collective knowgget out to every other shard's inbox.
  /// `at` is the publisher's shard clock. Callable from any shard thread;
  /// never blocks (drop-oldest inboxes).
  void publish(std::size_t fromShard, const ids::Knowgget& k, SimTime at);

  /// Drains `shard`'s inbox, handing each in-flight knowgget to `apply`
  /// (which returns whether the receiving KB accepted it — the one-way rule
  /// lives in KnowledgeBase::putRemote). Only the owning worker may drain
  /// its shard. Returns the number of items drained.
  std::size_t drain(std::size_t shard,
                    const std::function<bool(const RemoteKnowgget&)>& apply);

  /// Highest publisher timestamp applied into `shard` so far — the
  /// bounded-staleness watermark.
  SimTime appliedWatermark(std::size_t shard) const {
    return inboxes_[shard]->appliedWatermark();
  }

  // --- shutdown reconciliation ----------------------------------------------

  /// Deposits the shard's final own collective knowggets and marks it
  /// finished. Call exactly once per shard, after its engine's finish().
  void finishShard(std::size_t shard, std::vector<ids::Knowgget> finalOwn);

  bool allFinished() const;
  /// Blocks until every shard has called finishShard() — one predicate wait
  /// on the finish condvar, no polling. Safe because publish() never blocks
  /// (drop-oldest inboxes): a late publisher cannot deadlock against parked
  /// waiters, and anything its publishes evict in the meantime is repaired
  /// by applyFinalFrom().
  void waitAllFinished() const;
  /// Bounded variant for tests/diagnostics: waits up to `timeout`, returns
  /// allFinished(). Production shutdown uses the untimed overload above.
  bool waitAllFinished(std::chrono::milliseconds timeout) const;

  /// Applies every *other* shard's final collective set to `shard`, in
  /// shard order (deterministic across receivers). Requires allFinished().
  /// Returns the number of knowggets offered.
  std::size_t applyFinalFrom(
      std::size_t shard, const std::function<bool(const ids::Knowgget&)>& apply);

  Stats stats() const;

  /// Appends exchange counters + per-inbox ring metrics under `prefix`
  /// (e.g. "pipeline.exchange"). Call while quiescent.
  void collectMetrics(obs::Registry& reg, const std::string& prefix) const;

 private:
  void countApply(bool accepted);

  std::vector<std::unique_ptr<KnowledgeInbox>> inboxes_;

  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> droppedInFlight_{0};
  mutable std::atomic<std::uint64_t> finishWaits_{0};

  mutable std::mutex finishMu_;
  mutable std::condition_variable finishedCv_;
  std::vector<std::vector<ids::Knowgget>> finalKnowledge_;
  std::size_t finishedCount_ = 0;
};

}  // namespace kalis::pipeline
