#include "pipeline/knowledge_exchange.hpp"

namespace kalis::pipeline {

KnowledgeExchange::KnowledgeExchange(Options options) {
  const std::size_t shards = options.shards == 0 ? 1 : options.shards;
  inboxes_.reserve(shards);
  finalKnowledge_.resize(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    inboxes_.push_back(std::make_unique<KnowledgeInbox>(options.inboxCapacity));
  }
}

void KnowledgeExchange::publish(std::size_t fromShard, const ids::Knowgget& k,
                                SimTime at) {
  published_.fetch_add(1, std::memory_order_relaxed);
  if (inboxes_.size() < 2) return;  // single shard: nothing to exchange
  RemoteKnowgget item;
  item.knowgget = k;
  item.fromShard = fromShard;
  item.publishedAt = at;
  for (std::size_t shard = 0; shard < inboxes_.size(); ++shard) {
    if (shard == fromShard) continue;
    // The inbox's drop-oldest discipline keeps publish non-blocking: a
    // stalled consumer costs an eviction (repaired by shutdown
    // reconciliation), never a deadlock.
    const auto result = inboxes_[shard]->deliver(item);
    if (result == KnowledgeInbox::Deliver::kDroppedOldest) {
      droppedInFlight_.fetch_add(1, std::memory_order_relaxed);
    }
    if (result != KnowledgeInbox::Deliver::kClosed) {
      deliveries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t KnowledgeExchange::drain(
    std::size_t shard, const std::function<bool(const RemoteKnowgget&)>& apply) {
  return inboxes_[shard]->drain(
      [&](const RemoteKnowgget& item) { countApply(apply(item)); });
}

void KnowledgeExchange::countApply(bool accepted) {
  if (accepted) {
    applied_.fetch_add(1, std::memory_order_relaxed);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
}

void KnowledgeExchange::finishShard(std::size_t shard,
                                    std::vector<ids::Knowgget> finalOwn) {
  {
    std::lock_guard<std::mutex> lock(finishMu_);
    finalKnowledge_[shard] = std::move(finalOwn);
    ++finishedCount_;
  }
  finishedCv_.notify_all();
}

bool KnowledgeExchange::allFinished() const {
  std::lock_guard<std::mutex> lock(finishMu_);
  return finishedCount_ >= inboxes_.size();
}

void KnowledgeExchange::waitAllFinished() const {
  finishWaits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(finishMu_);
  finishedCv_.wait(lock, [this] { return finishedCount_ >= inboxes_.size(); });
}

bool KnowledgeExchange::waitAllFinished(std::chrono::milliseconds timeout) const {
  finishWaits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(finishMu_);
  return finishedCv_.wait_for(
      lock, timeout, [this] { return finishedCount_ >= inboxes_.size(); });
}

std::size_t KnowledgeExchange::applyFinalFrom(
    std::size_t shard, const std::function<bool(const ids::Knowgget&)>& apply) {
  // Snapshot under the lock, apply outside it: `apply` reaches into the
  // shard's KB and must not run while holding exchange-internal locks.
  std::vector<std::vector<ids::Knowgget>> finals;
  {
    std::lock_guard<std::mutex> lock(finishMu_);
    finals = finalKnowledge_;
  }
  std::size_t offered = 0;
  for (std::size_t from = 0; from < finals.size(); ++from) {
    if (from == shard) continue;
    for (const ids::Knowgget& k : finals[from]) {
      countApply(apply(k));
      ++offered;
    }
  }
  return offered;
}

KnowledgeExchange::Stats KnowledgeExchange::stats() const {
  Stats s;
  s.published = published_.load(std::memory_order_relaxed);
  s.deliveries = deliveries_.load(std::memory_order_relaxed);
  s.applied = applied_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.droppedInFlight = droppedInFlight_.load(std::memory_order_relaxed);
  s.finishWaits = finishWaits_.load(std::memory_order_relaxed);
  return s;
}

void KnowledgeExchange::collectMetrics(obs::Registry& reg,
                                       const std::string& prefix) const {
  const Stats s = stats();
  reg.counter(prefix + ".published", s.published);
  reg.counter(prefix + ".deliveries", s.deliveries);
  reg.counter(prefix + ".applied", s.applied);
  reg.counter(prefix + ".rejected", s.rejected);
  reg.counter(prefix + ".dropped_in_flight", s.droppedInFlight);
  reg.counter(prefix + ".finish_waits", s.finishWaits);
  for (std::size_t i = 0; i < inboxes_.size(); ++i) {
    inboxes_[i]->collectMetrics(reg, prefix + ".inbox." + std::to_string(i));
  }
}

}  // namespace kalis::pipeline
