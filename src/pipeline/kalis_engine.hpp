// Kalis detection backend for the ingestion pipeline: one complete,
// thread-confined Kalis stack per shard.
//
// Each shard engine owns a private discrete-event Simulator and KalisNode
// (Knowledge Base, Data Store, Module Manager, full module library). A
// packet replayed into the engine first advances the shard's virtual clock
// to the capture timestamp — firing any pending 1 s ticks exactly as live
// operation would — and is then fed through KalisNode::feed. Flood windows,
// watchdog state and traffic statistics therefore behave identically to the
// single-box reproduction for every flow the shard owns.
//
// Because the EngineFactory runs on the worker thread, all shard state is
// built, mutated and destroyed by that one thread; the debug-build
// thread-ownership checkers in KnowledgeBase / DataStore enforce this.
#pragma once

#include <functional>
#include <string>

#include "kalis/kalis_node.hpp"
#include "pipeline/engine.hpp"

namespace kalis::pipeline {

struct KalisEngineOptions {
  /// Seed of shard i's private simulator: seedBase + i. A deterministic
  /// single-shard pipeline with seedBase s is bit-identical to a direct
  /// KalisNode on Simulator(s).
  std::uint64_t seedBase = 1;
  /// Node options for every shard. Shard 0 keeps `node.id` verbatim (so
  /// deterministic mode matches a directly-driven node); shard i > 0 gets
  /// "<id>-s<i>".
  ids::KalisNode::Options node{};
  /// Module/knowledge setup, run right after construction and before
  /// start() — e.g. [](ids::KalisNode& n) { n.useStandardLibrary(); }.
  std::function<void(ids::KalisNode&)> configure;
  /// finish() runs each shard's clock to this virtual time, letting
  /// tick-driven detection windows close after the last packet (mirror of
  /// the runUntil() tail in synchronous replay). 0 = no drain.
  SimTime drainUntil = 0;
};

/// Factory for Pipeline: builds one Kalis shard engine per worker.
EngineFactory makeKalisEngineFactory(KalisEngineOptions options);

}  // namespace kalis::pipeline
