// The detection-engine seam of kalis::pipeline.
//
// A PacketEngine is a shard-confined detection backend: the Pipeline
// constructs one per shard *on the worker thread that will own it* (via the
// EngineFactory), routes that shard's packets into it in enqueue order, and
// periodically collects its alerts for the ordered merge stage. Engines
// never see packets from other shards and are never called from two
// threads, so implementations need no locking.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kalis/alert.hpp"
#include "kalis/knowledge.hpp"
#include "net/packet.hpp"
#include "util/types.hpp"

namespace kalis::pipeline {

class PacketEngine {
 public:
  virtual ~PacketEngine() = default;

  /// Processes one packet. Packets arrive in per-source capture order.
  virtual void onPacket(const net::CapturedPacket& pkt) = 0;

  /// Processes one dequeued batch. The pointed-to packets stay alive (and
  /// unmoved) for the whole call, so an engine may dissect them in place and
  /// keep batch-scoped views — e.g. against an arena it resets here. The
  /// default simply loops onPacket; override to amortize per-batch work.
  virtual void onBatch(const net::CapturedPacket* const* pkts,
                       std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) onPacket(*pkts[i]);
  }

  /// Returns (and clears) the alerts raised since the previous call, in
  /// nondecreasing Alert::time order. Together with the watermark()
  /// promise below this makes the shard's alert stream sorted *across*
  /// calls too — each drain continues a single nondecreasing run — which
  /// the pipeline's merge stage relies on to treat per-shard buffers as
  /// pre-sorted runs instead of re-heapifying every alert.
  virtual std::vector<ids::Alert> takeAlerts() = 0;

  /// Pooling variant of takeAlerts(): appends the pending alerts to `out`
  /// (same order) and clears the internal buffer while keeping its capacity,
  /// so the steady-state alert path stops allocating. The Pipeline always
  /// drains through this entry point with a per-shard scratch vector.
  virtual void drainAlerts(std::vector<ids::Alert>& out) {
    std::vector<ids::Alert> fresh = takeAlerts();
    for (ids::Alert& a : fresh) out.push_back(std::move(a));
  }

  /// Completeness promise for the merge stage: no alert returned by a
  /// *future* takeAlerts() will carry time < watermark().
  virtual SimTime watermark() const = 0;

  /// End-of-stream, called exactly once after the last onPacket (e.g. to
  /// run out tick-driven detection windows).
  virtual void finish() {}

  // --- collective knowledge (optional; defaults model a knowledge-less
  // engine so non-Kalis backends and tests need not care) --------------------

  /// Returns (and clears) the collective knowggets this engine changed since
  /// the previous call. The Pipeline drains this at every batch boundary and
  /// hands the updates to the KnowledgeExchange (or discards them when the
  /// exchange is off, keeping the buffer bounded either way).
  virtual std::vector<ids::Knowgget> takeCollectiveUpdates() { return {}; }

  /// Offers one remote shard's knowgget to this engine's knowledge base.
  /// Returns whether it was accepted — implementations must enforce the
  /// one-way update rule (KnowledgeBase::putRemote). Called only from the
  /// owning worker thread.
  virtual bool applyRemoteKnowledge(const ids::Knowgget& k) {
    (void)k;
    return false;
  }

  /// Snapshot of the engine's collective knowggets: only those this engine
  /// created (`ownedOnly`, for the shutdown reconciliation deposit) or its
  /// full collective view including applied remote entries (for convergence
  /// checks).
  virtual std::vector<ids::Knowgget> collectiveKnowledge(bool ownedOnly) const {
    (void)ownedOnly;
    return {};
  }
};

/// Builds the engine for `shard`; invoked on the owning worker thread (or
/// the caller thread in deterministic mode).
using EngineFactory =
    std::function<std::unique_ptr<PacketEngine>(std::size_t shard)>;

}  // namespace kalis::pipeline
