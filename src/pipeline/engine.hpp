// The detection-engine seam of kalis::pipeline.
//
// A PacketEngine is a shard-confined detection backend: the Pipeline
// constructs one per shard *on the worker thread that will own it* (via the
// EngineFactory), routes that shard's packets into it in enqueue order, and
// periodically collects its alerts for the ordered merge stage. Engines
// never see packets from other shards and are never called from two
// threads, so implementations need no locking.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kalis/alert.hpp"
#include "net/packet.hpp"
#include "util/types.hpp"

namespace kalis::pipeline {

class PacketEngine {
 public:
  virtual ~PacketEngine() = default;

  /// Processes one packet. Packets arrive in per-source capture order.
  virtual void onPacket(const net::CapturedPacket& pkt) = 0;

  /// Returns (and clears) the alerts raised since the previous call, in
  /// nondecreasing Alert::time order.
  virtual std::vector<ids::Alert> takeAlerts() = 0;

  /// Completeness promise for the merge stage: no alert returned by a
  /// *future* takeAlerts() will carry time < watermark().
  virtual SimTime watermark() const = 0;

  /// End-of-stream, called exactly once after the last onPacket (e.g. to
  /// run out tick-driven detection windows).
  virtual void finish() {}
};

/// Builds the engine for `shard`; invoked on the owning worker thread (or
/// the caller thread in deterministic mode).
using EngineFactory =
    std::function<std::unique_ptr<PacketEngine>(std::size_t shard)>;

}  // namespace kalis::pipeline
